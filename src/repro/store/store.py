"""Persistent index store: build once, mmap-serve forever.

The paper's premise is that the reversed-text compressed suffix array and
the dominate index are built *once per database* and amortized over every
query; :class:`IndexStore` makes that literal across processes.  ``build``
runs the expensive constructions (suffix array, BWT, Occ checkpoints,
domination scan), ``save`` serializes every array into the versioned binary
format of :mod:`repro.store.format`, and ``open`` maps the arrays back with
``numpy.memmap`` — no suffix-array work, reads are zero-copy and pages load
lazily.  :meth:`engine` then assembles a ready
:class:`~repro.core.alae.ALAE` around the mapped arrays (materialising the
hot-path representations, a sequential page-in), and :meth:`database` restores the
:class:`~repro.io.database.SequenceDatabase` offset/id table, so a serving
process cold-starts in milliseconds instead of rebuild time.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.alphabet import DNA, PROTEIN, Alphabet
from repro.core.alae import ALAE
from repro.core.domination import DominationIndex
from repro.errors import StoreError
from repro.index.csa import ReversedTextIndex
from repro.index.fm_index import FMIndex
from repro.index.kmer_index import DEFAULT_WORD_SIZE, KmerIndex
from repro.io.database import SequenceDatabase
from repro.io.fasta import FastaRecord
from repro.scoring.scheme import DEFAULT_SCHEME, ScoringScheme
from repro.store.format import (
    header_prefix_crc,
    map_array,
    read_header,
    verify_file,
    write_store,
)

#: Well-known alphabets resolved by character set when reopening a store.
_KNOWN_ALPHABETS = {DNA.chars: DNA, PROTEIN.chars: PROTEIN}

#: Format version of the optional k-mer aux section (bump on layout change).
#: The section rides the normal array table, so its bytes are CRC'd like
#: every other array; a store without it (or with a version/k mismatch)
#: simply falls back to a lazy in-memory build.
KMER_AUX_VERSION = 1

#: Arrays making up the k-mer aux section (CSR postings layout).
_KMER_ARRAYS = ("kmer_words", "kmer_offsets", "kmer_positions")


def _fingerprint(
    alphabet: Alphabet,
    scheme: ScoringScheme,
    occ_block: int,
    sa_sample: int,
    q: int,
) -> dict:
    return {
        "alphabet_name": alphabet.name,
        "alphabet_chars": alphabet.chars,
        "scheme": list(scheme.as_tuple()),
        "occ_block": int(occ_block),
        "sa_sample": int(sa_sample),
        "q": int(q),
    }


def fingerprint_key(fingerprint: dict) -> str:
    """Canonical one-line form of a fingerprint (cache keys, messages)."""
    scheme = ",".join(str(s) for s in fingerprint["scheme"])
    return (
        f"{fingerprint['alphabet_name']}:{fingerprint['alphabet_chars']}"
        f"|<{scheme}>|occ={fingerprint['occ_block']}"
        f"|sa={fingerprint['sa_sample']}|q={fingerprint['q']}"
    )


def _encode_grams(items: list, q: int) -> dict[str, np.ndarray]:
    """Fixed-width encoding of :meth:`DominationIndex.export_items` rows."""
    k = len(items)
    grams = np.zeros((k, q), dtype=np.uint8)
    preds = np.zeros((k, q), dtype=np.uint8)
    status = np.zeros(k, dtype=np.uint8)
    for row, (gram, predecessor, multi) in enumerate(items):
        grams[row] = np.frombuffer(gram.encode("ascii"), dtype=np.uint8)
        if multi:
            status[row] = 1
        elif predecessor is not None:
            status[row] = 2
            preds[row] = np.frombuffer(
                predecessor.encode("ascii"), dtype=np.uint8
            )
    return {"dom_grams": grams, "dom_status": status, "dom_preds": preds}


def _decode_grams(
    grams: np.ndarray, status: np.ndarray, preds: np.ndarray
) -> list:
    gram_blob = np.ascontiguousarray(grams).tobytes()
    pred_blob = np.ascontiguousarray(preds).tobytes()
    q = grams.shape[1] if grams.ndim == 2 else 0
    items = []
    for row, flag in enumerate(np.asarray(status).tolist()):
        gram = gram_blob[row * q : (row + 1) * q].decode("ascii")
        if flag == 1:
            items.append((gram, None, True))
        elif flag == 2:
            pred = pred_blob[row * q : (row + 1) * q].decode("ascii")
            items.append((gram, pred, False))
        else:
            items.append((gram, None, False))
    return items


class IndexStore:
    """Everything a serving process needs, as named raw arrays.

    Instances come from :meth:`build` (arrays in memory, ready to
    :meth:`save`) or :meth:`open` (arrays memory-mapped read-only from a
    saved file).  Either way :meth:`database` and :meth:`engine` assemble —
    and cache — the runtime objects.
    """

    def __init__(
        self, header: dict, arrays: dict[str, np.ndarray], path: Path | None
    ) -> None:
        self._header = header
        self._arrays = arrays
        self._path = path
        self._header_crc: int | None = None
        self._database: SequenceDatabase | None = None
        self._engines: dict[tuple, ALAE] = {}
        self._kmer_indexes: dict[int, KmerIndex] = {}
        # Instances are shared across threads via StoreCache; the lock keeps
        # the expensive lazy materializations single-flight.
        self._materialize_lock = threading.RLock()

    # -------------------------------------------------------------- factory
    @classmethod
    def build(
        cls,
        database: SequenceDatabase | Sequence[FastaRecord] | str | Path,
        *,
        alphabet: Alphabet = DNA,
        scheme: ScoringScheme = DEFAULT_SCHEME,
        occ_block: int = 128,
        sa_sample: int = 16,
        kmer_k: int | None = DEFAULT_WORD_SIZE,
    ) -> "IndexStore":
        """Run every offline construction and capture the results as arrays.

        ``kmer_k`` additionally persists the BLAST seeding postings as an
        aux section (``None`` disables it; serving then lazy-builds the
        index in memory on the first ``fast``/``verified`` search).
        """
        database = SequenceDatabase.coerce(database)
        for record in database.records:
            if "\n" in record.header:
                raise StoreError(
                    f"header {record.identifier!r} contains a newline and "
                    f"cannot be serialized"
                )
        text = database.text
        csa = ReversedTextIndex(
            text, alphabet, occ_block=occ_block, sa_sample=sa_sample
        )
        domination = DominationIndex(text, scheme.q)

        arrays: dict[str, np.ndarray] = {
            "db_text": np.frombuffer(text.encode("ascii"), dtype=np.uint8),
            "db_offsets": np.asarray(database.boundaries(), dtype=np.int64),
            "db_headers": np.frombuffer(
                "\n".join(r.header for r in database.records).encode("utf-8"),
                dtype=np.uint8,
            ),
        }
        for name, array in csa.fm_components().items():
            arrays[f"fm_{name}"] = array
        arrays.update(_encode_grams(domination.export_items(), scheme.q))

        header = {
            "fingerprint": _fingerprint(
                alphabet, scheme, occ_block, sa_sample, scheme.q
            ),
            "database": {
                "records": len(database),
                "total_length": database.total_length,
            },
        }
        kmer_index: KmerIndex | None = None
        if kmer_k is not None:
            kmer_index = KmerIndex(text, int(kmer_k))
            arrays.update(kmer_index.components())
            # Aux sections live beside the fingerprint, not in it: they add
            # capability without changing the store's identity (cache keys,
            # shard-manifest compatibility).
            header["aux"] = {
                "kmer": {"version": KMER_AUX_VERSION, "k": int(kmer_k)}
            }
        store = cls(header, arrays, path=None)
        store._database = database
        if kmer_index is not None:
            store._kmer_indexes[kmer_index.k] = kmer_index
        return store

    def save(self, path: str | Path) -> Path:
        """Serialize to ``path`` (atomic rename); the store becomes reopenable."""
        self._path = write_store(path, self._header, self._arrays)
        self._header_crc = header_prefix_crc(self._path)
        return self._path

    @classmethod
    def open(cls, path: str | Path) -> "IndexStore":
        """Map a saved store read-only; array bytes are not copied or read yet."""
        path = Path(path)
        header, data_start = read_header(path)
        arrays = {
            spec["name"]: map_array(path, data_start, spec)
            for spec in header["arrays"]
        }
        required = {
            "db_text", "db_offsets", "db_headers", "fm_bwt", "fm_c_array",
            "fm_occ_ckpt", "fm_sa_rows", "fm_sa_positions", "dom_grams",
            "dom_status", "dom_preds",
        }
        missing = required - set(arrays)
        if missing:
            raise StoreError(
                f"{path}: store is missing arrays {sorted(missing)}"
            )
        store = cls(header, arrays, path=path)
        store._header_crc = header_prefix_crc(path)
        return store

    @staticmethod
    def verify(path: str | Path) -> list[str]:
        """Recompute all checksums; return problems (empty list = intact)."""
        return verify_file(path)

    # ----------------------------------------------------------- inspection
    @property
    def path(self) -> Path | None:
        """Where the store lives on disk (``None`` until saved)."""
        return self._path

    @property
    def header_crc(self) -> int | None:
        """CRC-32 of the on-disk header (``None`` until saved or opened).

        Covers the fingerprint and the whole array table, so it identifies
        the file contents this store was loaded from — spawn workers use it
        to refuse a store that was rebuilt in place under the parent.
        """
        return self._header_crc

    @property
    def header(self) -> dict:
        return self._header

    @property
    def fingerprint(self) -> dict:
        return self._header["fingerprint"]

    @property
    def fingerprint_key(self) -> str:
        return fingerprint_key(self.fingerprint)

    @property
    def alphabet(self) -> Alphabet:
        chars = self.fingerprint["alphabet_chars"]
        known = _KNOWN_ALPHABETS.get(chars)
        if known is not None and known.name == self.fingerprint["alphabet_name"]:
            return known
        return Alphabet(self.fingerprint["alphabet_name"], chars)

    @property
    def scheme(self) -> ScoringScheme:
        return ScoringScheme(*self.fingerprint["scheme"])

    def array(self, name: str) -> np.ndarray:
        try:
            return self._arrays[name]
        except KeyError:
            raise StoreError(f"store has no array {name!r}") from None

    def size_bytes(self) -> dict[str, int]:
        """Serialized bytes per array plus the total payload."""
        sizes = {name: int(a.nbytes) for name, a in self._arrays.items()}
        sizes["total"] = sum(sizes.values())
        return sizes

    # ------------------------------------------------------- compatibility
    def check_alphabet(self, alphabet: Alphabet) -> None:
        if alphabet.chars != self.fingerprint["alphabet_chars"]:
            raise StoreError(
                f"store was built for alphabet "
                f"{self.fingerprint['alphabet_name']!r} "
                f"({self.fingerprint['alphabet_chars']}), not "
                f"{alphabet.name!r} ({alphabet.chars})"
            )

    def check_scheme(self, scheme: ScoringScheme) -> None:
        if list(scheme.as_tuple()) != list(self.fingerprint["scheme"]):
            built = ScoringScheme(*self.fingerprint["scheme"])
            raise StoreError(
                f"store was built for scheme {built}, not {scheme}; "
                f"the dominate index depends on q and cannot be reused"
            )

    # ------------------------------------------------------ materialization
    def database(self) -> SequenceDatabase:
        """The database, rebuilt from the offset/id table (cached)."""
        with self._materialize_lock:
            if self._database is None:
                text = self.array("db_text").tobytes().decode("ascii")
                headers_blob = self.array("db_headers").tobytes().decode("utf-8")
                self._database = SequenceDatabase.from_concatenated(
                    text,
                    self.array("db_offsets").tolist(),
                    headers_blob.split("\n"),
                )
            return self._database

    def kmer_index(self, k: int | None = None) -> KmerIndex:
        """The k-mer seeding index for word length ``k`` (cached per ``k``).

        When the store carries a matching aux section (same format version
        and ``k``) the index is reconstructed from the mapped arrays —
        posting lists are zero-copy slices of the on-disk bytes.  Otherwise
        (no section, version skew, or a different ``k``) it is built from
        the text in memory: absent aux degrades to lazy, never to an error.
        ``k=None`` means "whatever the store persisted" (falling back to
        the default word size).
        """
        aux = self._header.get("aux", {}).get("kmer")
        if k is None:
            k = int(aux["k"]) if aux else DEFAULT_WORD_SIZE
        k = int(k)
        with self._materialize_lock:
            cached = self._kmer_indexes.get(k)
            if cached is not None:
                return cached
            text = self.database().text
            index: KmerIndex | None = None
            if (
                aux is not None
                and aux.get("version") == KMER_AUX_VERSION
                and int(aux.get("k", 0)) == k
                and set(_KMER_ARRAYS) <= set(self._arrays)
            ):
                index = KmerIndex.from_components(
                    text,
                    k,
                    self.array("kmer_words"),
                    self.array("kmer_offsets"),
                    self.array("kmer_positions"),
                )
            if index is None:
                index = KmerIndex(text, k)
            self._kmer_indexes[k] = index
            return index

    def engine(self, **toggles) -> ALAE:
        """An :class:`ALAE` engine over the stored indexes (cached per toggles).

        ``toggles`` are the engine's ``use_*`` keyword arguments; structural
        parameters (``occ_block``, ``sa_sample``, the scheme) are fixed by
        the store's fingerprint.
        """
        key = tuple(sorted(toggles.items()))
        with self._materialize_lock:
            if key not in self._engines:
                fingerprint = self.fingerprint
                fm = FMIndex.from_components(
                    self.array("fm_bwt"),
                    self.array("fm_c_array"),
                    self.array("fm_occ_ckpt"),
                    self.array("fm_sa_rows"),
                    self.array("fm_sa_positions"),
                    sigma=self.alphabet.size,
                    occ_block=fingerprint["occ_block"],
                    sa_sample=fingerprint["sa_sample"],
                )
                database = self.database()
                csa = ReversedTextIndex.from_fm_index(
                    database.text, self.alphabet, fm
                )
                domination = None
                if toggles.get("use_domination", True):
                    domination = DominationIndex.from_items(
                        _decode_grams(
                            self.array("dom_grams"),
                            self.array("dom_status"),
                            self.array("dom_preds"),
                        ),
                        q=fingerprint["q"],
                        n=len(database.text),
                    )
                try:
                    self._engines[key] = ALAE.from_prebuilt(
                        csa,
                        scheme=self.scheme,
                        domination=domination,
                        **toggles,
                    )
                except TypeError as exc:
                    raise StoreError(
                        f"unsupported engine option for a store-backed "
                        f"engine: {exc}"
                    ) from None
            return self._engines[key]
