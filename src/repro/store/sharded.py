"""Sharded index stores: horizontal partitioning of one database (manifest).

The paper serves queries over *all* database sequences concatenated into a
single text (Sec. 2.2); a single :class:`~repro.store.IndexStore` makes that
text's indexes persistent, but one store still means one index build, one
file, one core.  :class:`ShardedStore` is the horizontal-partitioning step:
a :class:`~repro.io.database.ShardPlan` splits the record collection into K
balanced shards (greedy bin-packing on sequence length, never splitting a
record), each shard becomes its own ``IndexStore`` — built independently,
so builds parallelise across cores — and a small versioned, checksummed
**manifest** ties them back together:

``fingerprint``
    The shared build parameters (alphabet, scheme, FM parameters); every
    shard store must carry the identical fingerprint.
``records``
    The global id table: every record's identifier and length *in original
    concatenation order*, so global offsets — and therefore globally
    ordered merged results — are reconstructable without touching a shard.
``shards``
    One entry per shard: relative file name, the shard store's header
    CRC-32 (a swapped or rebuilt shard file is detected at open, not
    served), the original record indices it holds, and its text length.

The manifest itself is JSON wrapped in a magic/version/CRC envelope and
written atomically, mirroring the guarantees of the binary store format on
a human-readable file.
"""

from __future__ import annotations

import json
import multiprocessing
import zlib
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Sequence

from repro.alphabet import DNA, Alphabet
from repro.errors import StoreError
from repro.index.kmer_index import DEFAULT_WORD_SIZE
from repro.io.database import SequenceDatabase, ShardPlan
from repro.io.fasta import FastaRecord
from repro.scoring.scheme import DEFAULT_SCHEME, ScoringScheme
from repro.store.cache import default_store_cache
from repro.store.format import MAGIC as STORE_MAGIC
from repro.store.store import IndexStore, _fingerprint, fingerprint_key

#: Manifest magic: distinguishes a shard manifest from a binary store.
MANIFEST_MAGIC = "REPROSHD"

#: Bumped on any change to the manifest schema.
MANIFEST_VERSION = 1


def _canonical(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def manifest_payload_crc(payload: dict) -> int:
    """CRC-32 of a manifest payload's canonical JSON form.

    This is the checksum stored in the manifest envelope, so it is the
    on-disk identity of a sharded index: serving layers compare it to
    detect in-place rebuilds (spawn-worker safety, hot reload).
    """
    return zlib.crc32(_canonical(payload))


def write_manifest(path: str | Path, payload: dict) -> Path:
    """Write a checksummed manifest envelope atomically (tmp + rename)."""
    path = Path(path)
    envelope = {
        "magic": MANIFEST_MAGIC,
        "format_version": MANIFEST_VERSION,
        "crc32": manifest_payload_crc(payload),
        "payload": payload,
    }
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(envelope, sort_keys=True, indent=1) + "\n")
    tmp.replace(path)
    return path


def read_manifest(path: str | Path) -> dict:
    """Validate a manifest envelope and return its payload.

    Raises :class:`StoreError` on bad magic, version skew, malformed JSON or
    a payload that fails its CRC.
    """
    path = Path(path)
    try:
        raw = path.read_text()
    except OSError as exc:
        raise StoreError(f"cannot read shard manifest {path}: {exc}") from None
    try:
        envelope = json.loads(raw)
    except ValueError:
        raise StoreError(f"{path}: manifest is not valid JSON") from None
    if not isinstance(envelope, dict) or envelope.get("magic") != MANIFEST_MAGIC:
        raise StoreError(f"{path}: not a shard manifest (bad magic)")
    version = envelope.get("format_version")
    if version != MANIFEST_VERSION:
        raise StoreError(
            f"{path}: manifest version {version} != supported "
            f"{MANIFEST_VERSION}; rebuild with `repro index build --shards`"
        )
    payload = envelope.get("payload")
    if not isinstance(payload, dict):
        raise StoreError(f"{path}: manifest has no payload")
    if manifest_payload_crc(payload) != envelope.get("crc32"):
        raise StoreError(f"{path}: manifest checksum mismatch (corrupt)")
    return payload


def is_manifest(path: str | Path) -> bool:
    """Sniff whether ``path`` is a shard manifest (vs a binary store).

    A binary store starts with the 8-byte ``REPROIDX`` magic; anything else
    that parses as a manifest envelope is sharded.  Used by the CLI and the
    service layer so ``--index`` accepts either transparently.
    """
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            head = handle.read(len(STORE_MAGIC))
    except OSError as exc:
        raise StoreError(f"cannot read index store {path}: {exc}") from None
    if head == STORE_MAGIC:
        return False
    try:
        read_manifest(path)
    except StoreError:
        return False
    return True


def _shard_name(manifest_name: str, shard: int) -> str:
    return f"{manifest_name}.shard{shard:03d}.idx"


def _build_shard_store(
    task: "tuple[int, list[FastaRecord], str, Alphabet, ScoringScheme, int, int, int | None]",
) -> tuple[int, int]:
    """Build and save one shard store; returns ``(shard, header_crc)``.

    Module-level so fork *and* spawn pools can run it; the records travel
    by pickle (spawn) or arrive copy-on-write (fork).
    """
    shard, records, dest, alphabet, scheme, occ_block, sa_sample, kmer_k = task
    store = IndexStore.build(
        SequenceDatabase(records),
        alphabet=alphabet,
        scheme=scheme,
        occ_block=occ_block,
        sa_sample=sa_sample,
        kmer_k=kmer_k,
    )
    store.save(dest)
    return shard, store.header_crc


class ShardedStore:
    """K :class:`IndexStore` files plus the manifest that merges them.

    Instances come from :meth:`build` (which writes every shard store and
    the manifest) or :meth:`open` (which reads the manifest; shard stores
    are opened lazily through the process-wide store cache and validated
    against the manifest's per-shard header CRCs and shared fingerprint).
    """

    def __init__(self, path: Path, payload: dict) -> None:
        self._path = Path(path)
        self._payload = payload
        self._stores: dict[int, IndexStore] = {}
        offsets, pos = [], 0
        for spec in payload["records"]:
            offsets.append(pos)
            pos += int(spec["length"])
        self._global_offsets = offsets
        self._total_length = pos

    # -------------------------------------------------------------- factory
    @classmethod
    def build(
        cls,
        database: SequenceDatabase | Sequence[FastaRecord] | str | Path,
        path: str | Path,
        *,
        shards: int,
        alphabet: Alphabet = DNA,
        scheme: ScoringScheme = DEFAULT_SCHEME,
        occ_block: int = 128,
        sa_sample: int = 16,
        build_workers: int = 1,
        kmer_k: int | None = DEFAULT_WORD_SIZE,
    ) -> "ShardedStore":
        """Partition, build every shard store, write the manifest, reopen.

        ``build_workers > 1`` builds shards in a process pool (fork where
        available, spawn otherwise) — index construction is CPU-bound
        Python, so this is the multi-core build path a single
        ``IndexStore.build`` cannot offer.
        """
        database = SequenceDatabase.coerce(database)
        path = Path(path)
        plan = ShardPlan.balanced(database, shards)
        tasks = [
            (
                shard,
                [database.records[i] for i in assigned],
                str(path.with_name(_shard_name(path.name, shard))),
                alphabet,
                scheme,
                occ_block,
                sa_sample,
                kmer_k,
            )
            for shard, assigned in enumerate(plan.assignments)
        ]
        crcs: dict[int, int] = {}
        workers = min(build_workers, len(tasks))
        methods = multiprocessing.get_all_start_methods()
        if workers > 1 and methods:
            method = "fork" if "fork" in methods else "spawn"
            with ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context(method),
            ) as pool:
                for shard, crc in pool.map(_build_shard_store, tasks):
                    crcs[shard] = crc
        else:
            for task in tasks:
                shard, crc = _build_shard_store(task)
                crcs[shard] = crc
        lengths = database.record_lengths()
        payload = {
            "fingerprint": _fingerprint(
                alphabet, scheme, occ_block, sa_sample, scheme.q
            ),
            "records": [
                {"id": record.identifier, "length": lengths[i]}
                for i, record in enumerate(database.records)
            ],
            "shards": [
                {
                    "path": _shard_name(path.name, shard),
                    "header_crc": crcs[shard],
                    "records": list(assigned),
                    "total_length": sum(lengths[i] for i in assigned),
                }
                for shard, assigned in enumerate(plan.assignments)
            ],
        }
        write_manifest(path, payload)
        return cls.open(path)

    @classmethod
    def open(cls, path: str | Path) -> "ShardedStore":
        """Read and validate the manifest; shard stores open on first use."""
        path = Path(path)
        payload = read_manifest(path)
        for key in ("fingerprint", "records", "shards"):
            if key not in payload:
                raise StoreError(f"{path}: manifest is missing {key!r}")
        if not payload["shards"]:
            raise StoreError(f"{path}: manifest lists no shards")
        seen: set[int] = set()
        for spec in payload["shards"]:
            indices = spec["records"]
            if seen.intersection(indices):
                raise StoreError(
                    f"{path}: manifest assigns a record to two shards"
                )
            seen.update(indices)
        if seen != set(range(len(payload["records"]))):
            raise StoreError(
                f"{path}: manifest shard assignments do not cover the "
                f"record table exactly"
            )
        return cls(path, payload)

    @staticmethod
    def verify(path: str | Path) -> list[str]:
        """Deep-verify manifest + every shard; return problems (empty = ok).

        Checks the manifest envelope CRC, every shard file's full checksum
        tree (:meth:`IndexStore.verify`), each shard's header CRC against
        the manifest (a shard rebuilt or swapped behind the manifest is a
        finding, not a silent divergence), the shared fingerprint, and that
        each shard's record identifiers/lengths match the global id table.
        """
        path = Path(path)
        try:
            store = ShardedStore.open(path)
        except StoreError as exc:
            return [str(exc)]
        problems: list[str] = []
        for shard, spec in enumerate(store._payload["shards"]):
            shard_path = store.shard_path(shard)
            if not shard_path.exists():
                problems.append(f"shard {shard}: missing file {shard_path}")
                continue
            problems.extend(IndexStore.verify(shard_path))
            try:
                opened = IndexStore.open(shard_path)
            except StoreError as exc:
                problems.append(str(exc))
                continue
            if opened.header_crc != spec["header_crc"]:
                problems.append(
                    f"shard {shard}: header CRC {opened.header_crc:#010x} "
                    f"!= manifest {spec['header_crc']:#010x} (rebuilt or "
                    f"swapped behind the manifest)"
                )
            if opened.fingerprint != store.fingerprint:
                problems.append(
                    f"shard {shard}: fingerprint {opened.fingerprint_key} "
                    f"!= manifest {store.fingerprint_key}"
                )
            records = opened.database().records
            table = store._payload["records"]
            expected = [
                (table[i]["id"], int(table[i]["length"]))
                for i in spec["records"]
            ]
            got = [(r.identifier, len(r.sequence)) for r in records]
            if expected != got:
                problems.append(
                    f"shard {shard}: records disagree with the manifest id "
                    f"table"
                )
        return problems

    # ----------------------------------------------------------- inspection
    @property
    def path(self) -> Path:
        return self._path

    @property
    def payload(self) -> dict:
        return self._payload

    @property
    def fingerprint(self) -> dict:
        return self._payload["fingerprint"]

    @property
    def fingerprint_key(self) -> str:
        return fingerprint_key(self.fingerprint)

    @property
    def shard_count(self) -> int:
        return len(self._payload["shards"])

    @property
    def record_count(self) -> int:
        return len(self._payload["records"])

    @property
    def total_length(self) -> int:
        """Total text length across every record (the unsharded ``n``)."""
        return self._total_length

    @property
    def record_ids(self) -> list[str]:
        return [spec["id"] for spec in self._payload["records"]]

    @property
    def global_offsets(self) -> list[int]:
        """0-based global start of every record in *original* order."""
        return list(self._global_offsets)

    def shard_path(self, shard: int) -> Path:
        return self._path.with_name(self._payload["shards"][shard]["path"])

    def shard_records(self, shard: int) -> list[int]:
        """Original record indices served by one shard (ascending)."""
        return list(self._payload["shards"][shard]["records"])

    def shard_lengths(self) -> list[int]:
        return [int(s["total_length"]) for s in self._payload["shards"]]

    # ------------------------------------------------------------- shards
    def store(self, shard: int) -> IndexStore:
        """One shard's :class:`IndexStore`, opened via the process cache.

        The first open of each shard is validated against the manifest: a
        header CRC or fingerprint mismatch (the shard was rebuilt or the
        file swapped after the manifest was written) is a hard error.
        """
        cached = self._stores.get(shard)
        if cached is not None:
            return cached
        spec = self._payload["shards"][shard]
        opened = default_store_cache().get(self.shard_path(shard))
        if opened.header_crc != spec["header_crc"]:
            raise StoreError(
                f"{self.shard_path(shard)}: header CRC "
                f"{opened.header_crc:#010x} != manifest "
                f"{spec['header_crc']:#010x}; the shard was rebuilt or "
                f"replaced after the manifest was written — rebuild the "
                f"sharded index"
            )
        if opened.fingerprint != self.fingerprint:
            raise StoreError(
                f"{self.shard_path(shard)}: fingerprint "
                f"{opened.fingerprint_key} != manifest "
                f"{self.fingerprint_key}"
            )
        self._stores[shard] = opened
        return opened

    def stores(self) -> list[IndexStore]:
        """Every shard store (opens any not yet opened)."""
        return [self.store(i) for i in range(self.shard_count)]

    def database(self) -> SequenceDatabase:
        """The *original* database, re-assembled in original record order.

        Mainly for tests and tooling: serving never needs the full
        concatenation — that is the point of sharding.
        """
        by_original: dict[int, FastaRecord] = {}
        for shard in range(self.shard_count):
            records = self.store(shard).database().records
            for local, original in enumerate(self.shard_records(shard)):
                by_original[original] = records[local]
        return SequenceDatabase(
            [by_original[i] for i in range(self.record_count)]
        )

    # ------------------------------------------------------- compatibility
    def check_alphabet(self, alphabet: Alphabet) -> None:
        if alphabet.chars != self.fingerprint["alphabet_chars"]:
            raise StoreError(
                f"sharded store was built for alphabet "
                f"{self.fingerprint['alphabet_name']!r} "
                f"({self.fingerprint['alphabet_chars']}), not "
                f"{alphabet.name!r} ({alphabet.chars})"
            )

    def check_scheme(self, scheme: ScoringScheme) -> None:
        if list(scheme.as_tuple()) != list(self.fingerprint["scheme"]):
            built = ScoringScheme(*self.fingerprint["scheme"])
            raise StoreError(
                f"sharded store was built for scheme {built}, not {scheme}; "
                f"the dominate index depends on q and cannot be reused"
            )
