"""The on-disk index-store format (schema as contract).

A store file is a self-describing container of raw numpy arrays::

    [0:8)    magic              b"REPROIDX"
    [8:12)   format version     uint32 little-endian
    [12:16)  header length L    uint32 little-endian
    [16:20)  header CRC-32      uint32 little-endian (of the JSON bytes)
    [20:20+L) header            canonical JSON, UTF-8
    ...      zero padding to the 64-byte-aligned *data start*
    ...      array blobs, each 64-byte aligned, in header table order
    [-4:]    file CRC-32        uint32 little-endian (of everything before it)

The header JSON carries three top-level keys:

``fingerprint``
    What the arrays were built *from*: alphabet name + characters, the
    ``(sa, sb, sg, ss)`` scoring scheme, FM-index parameters ``occ_block`` /
    ``sa_sample`` and the domination prefix length ``q``.  Opening a store
    under a different alphabet or scheme is a hard error, never a silent
    wrong answer.
``database``
    Record count and total text length, for ``repro index info``.
``arrays``
    One entry per blob: ``name``, numpy ``dtype`` string, ``shape``,
    ``offset`` (relative to the data start, so the header can be rewritten
    without shifting blobs), ``nbytes`` and ``crc32``.

Array offsets being *relative* keeps the header self-consistent in a single
pass: the absolute data start is derived from the header length at read
time.  Every byte of the file is covered by a checksum — the header by the
header CRC, each blob by its table CRC, padding and trailer by the whole-file
CRC — so :func:`verify_file` detects any single flipped byte.
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path

import numpy as np

from repro.errors import StoreError

#: File magic: 8 bytes, never reused across incompatible layouts.
MAGIC = b"REPROIDX"

#: Bumped on any change to the layout or header schema.
FORMAT_VERSION = 1

#: Blob alignment: one cache line, and a divisor of every page size numpy's
#: memmap cares about, so typed views never straddle an element boundary.
ALIGNMENT = 64

_PREFIX = struct.Struct("<8sIII")  # magic, version, header length, header crc

#: dtypes a store may carry (little-endian / endian-free only, so a file
#: written on any supported platform reads back identically).
ALLOWED_DTYPES = {"|u1", "<i8"}


def _align_up(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def _canonical_json(header: dict) -> bytes:
    return json.dumps(header, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def normalize_array(name: str, array: np.ndarray) -> np.ndarray:
    """Coerce ``array`` to a contiguous little-endian array of an allowed dtype."""
    array = np.ascontiguousarray(array)
    if array.dtype == np.uint8:
        pass
    elif array.dtype.kind in "iu":
        array = array.astype("<i8", copy=False)
    else:
        raise StoreError(
            f"array {name!r} has unsupported dtype {array.dtype.str!r}"
        )
    if array.dtype.str not in ALLOWED_DTYPES:
        array = array.astype(array.dtype.newbyteorder("<"))
    return array


def write_store(
    path: str | Path, header: dict, arrays: "dict[str, np.ndarray]"
) -> Path:
    """Serialize ``arrays`` under ``header`` to ``path`` (atomic via rename)."""
    path = Path(path)
    normalized = {
        name: normalize_array(name, array) for name, array in arrays.items()
    }
    table = []
    rel = 0
    for name, array in normalized.items():
        rel = _align_up(rel)
        table.append(
            {
                "name": name,
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": rel,
                "nbytes": int(array.nbytes),
                # Contiguous arrays expose the buffer protocol, so the CRC
                # (and the write below) consume them without a bytes copy.
                "crc32": zlib.crc32(array),
            }
        )
        rel += array.nbytes
    full_header = dict(header)
    full_header["arrays"] = table
    blob = _canonical_json(full_header)
    prefix = _PREFIX.pack(MAGIC, FORMAT_VERSION, len(blob), zlib.crc32(blob))
    data_start = _align_up(len(prefix) + len(blob))

    tmp = path.with_name(path.name + ".tmp")
    file_crc = 0
    with open(tmp, "wb") as handle:

        def emit(chunk) -> None:  # bytes or any C-contiguous buffer
            nonlocal file_crc
            file_crc = zlib.crc32(chunk, file_crc)
            handle.write(chunk)

        emit(prefix)
        emit(blob)
        emit(b"\x00" * (data_start - len(prefix) - len(blob)))
        written = 0
        for spec in table:
            emit(b"\x00" * (spec["offset"] - written))
            emit(normalized[spec["name"]])
            written = spec["offset"] + spec["nbytes"]
        handle.write(struct.pack("<I", file_crc))
    tmp.replace(path)
    return path


def read_header(path: str | Path) -> tuple[dict, int]:
    """Validate and parse the header; return ``(header, data_start)``.

    Raises :class:`StoreError` on bad magic, version skew, header corruption
    (CRC mismatch) or a file too small to hold its own array table.
    """
    path = Path(path)
    try:
        size = path.stat().st_size
        with open(path, "rb") as handle:
            prefix = handle.read(_PREFIX.size)
            if len(prefix) < _PREFIX.size:
                raise StoreError(f"{path}: truncated (no header)")
            magic, version, header_len, header_crc = _PREFIX.unpack(prefix)
            if magic != MAGIC:
                raise StoreError(f"{path}: not an index store (bad magic)")
            if version != FORMAT_VERSION:
                raise StoreError(
                    f"{path}: format version {version} != supported "
                    f"{FORMAT_VERSION}; rebuild with `repro index build`"
                )
            blob = handle.read(header_len)
    except OSError as exc:
        raise StoreError(f"cannot read index store {path}: {exc}") from None
    if len(blob) < header_len:
        raise StoreError(f"{path}: truncated header")
    if zlib.crc32(blob) != header_crc:
        raise StoreError(f"{path}: header checksum mismatch (corrupt header)")
    try:
        header = json.loads(blob.decode("utf-8"))
    except ValueError:
        raise StoreError(f"{path}: header is not valid JSON") from None
    data_start = _align_up(_PREFIX.size + header_len)
    for spec in header.get("arrays", []):
        if spec["dtype"] not in ALLOWED_DTYPES:
            raise StoreError(
                f"{path}: array {spec['name']!r} has disallowed dtype "
                f"{spec['dtype']!r}"
            )
        expected = int(np.prod(spec["shape"], dtype=np.int64)) * np.dtype(
            spec["dtype"]
        ).itemsize
        if expected != spec["nbytes"]:
            raise StoreError(
                f"{path}: array {spec['name']!r} shape/nbytes disagree"
            )
        if data_start + spec["offset"] + spec["nbytes"] > size - 4:
            raise StoreError(
                f"{path}: truncated (array {spec['name']!r} extends past "
                f"end of file)"
            )
    return header, data_start


def map_array(path: Path, data_start: int, spec: dict) -> np.ndarray:
    """Memory-map one array blob read-only (zero-copy)."""
    shape = tuple(spec["shape"])
    if spec["nbytes"] == 0:
        return np.empty(shape, dtype=np.dtype(spec["dtype"]))
    return np.memmap(
        path,
        mode="r",
        dtype=np.dtype(spec["dtype"]),
        shape=shape,
        offset=data_start + spec["offset"],
    )


_VERIFY_CHUNK = 1 << 20


def header_prefix_crc(path: str | Path) -> int:
    """The header CRC-32 stored in the fixed prefix (one 20-byte read).

    Covers the whole header JSON — fingerprint included — so it changes
    whenever a store is rebuilt with different parameters, making it a
    cheap content discriminator for cache keys.
    """
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            prefix = handle.read(_PREFIX.size)
    except OSError as exc:
        raise StoreError(f"cannot read index store {path}: {exc}") from None
    if len(prefix) < _PREFIX.size:
        raise StoreError(f"{path}: truncated (no header)")
    magic, _version, _header_len, header_crc = _PREFIX.unpack(prefix)
    if magic != MAGIC:
        raise StoreError(f"{path}: not an index store (bad magic)")
    return header_crc


def verify_file(path: str | Path) -> list[str]:
    """Recompute every checksum; return problems (empty = intact).

    One streamed pass in O(1) memory: array blobs are contiguous and in
    table order, so the whole-file CRC and every per-array CRC accumulate
    from the same chunks.
    """
    path = Path(path)
    problems: list[str] = []
    try:
        header, data_start = read_header(path)
    except StoreError as exc:
        return [str(exc)]
    size = path.stat().st_size
    if size < data_start + 4:
        return [f"{path}: truncated before data section"]
    # (start, end, spec) regions sorted by offset; read_header bounds-checked
    # them against the file size already.
    regions = sorted(
        (
            (data_start + spec["offset"],
             data_start + spec["offset"] + spec["nbytes"],
             spec)
            for spec in header.get("arrays", [])
        ),
        key=lambda region: region[0],
    )
    with open(path, "rb") as handle:
        handle.seek(size - 4)
        stored_crc = struct.unpack("<I", handle.read(4))[0]
        handle.seek(0)
        file_crc = 0
        array_crcs = [0] * len(regions)
        position = 0
        body = size - 4
        while position < body:
            chunk = handle.read(min(_VERIFY_CHUNK, body - position))
            if not chunk:
                return problems + [f"{path}: truncated before data section"]
            file_crc = zlib.crc32(chunk, file_crc)
            chunk_end = position + len(chunk)
            for i, (start, end, _spec) in enumerate(regions):
                if end <= position or start >= chunk_end:
                    continue
                lo, hi = max(start, position), min(end, chunk_end)
                array_crcs[i] = zlib.crc32(
                    chunk[lo - position : hi - position], array_crcs[i]
                )
            position = chunk_end
        if file_crc != stored_crc:
            problems.append(f"{path}: whole-file checksum mismatch")
        for crc, (_start, _end, spec) in zip(array_crcs, regions):
            if crc != spec["crc32"]:
                problems.append(
                    f"array {spec['name']!r}: checksum mismatch"
                )
    return problems
