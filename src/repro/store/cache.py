"""In-process LRU cache of opened index stores.

Serving layers (and spawn-pool workers) open stores by *path*; the cache
makes repeated opens of the same file — same path, same mtime, same
fingerprint — return the same :class:`~repro.store.store.IndexStore`
instance, so the materialized engine and database are shared too.  A store
rebuilt in place (mtime or size change) or rebuilt with different
parameters (fingerprint change) gets a fresh entry; stale entries age out
least-recently-used.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from pathlib import Path

from repro.errors import StoreError
from repro.obs.metrics import Counter
from repro.store.format import header_prefix_crc
from repro.store.store import IndexStore

_HITS_TOTAL = Counter(
    "repro_store_cache_hits_total",
    "Store-cache lookups answered by an already-open store",
)
_MISSES_TOTAL = Counter(
    "repro_store_cache_misses_total",
    "Store-cache lookups that opened the store from disk",
)
_EVICTIONS_TOTAL = Counter(
    "repro_store_cache_evictions_total",
    "Open stores dropped by the store cache (LRU or stale-path)",
)


class StoreCache:
    """LRU cache of :class:`IndexStore` keyed by ``(path, mtime, fingerprint)``.

    The lookup key is ``(path, mtime_ns, size, header_crc)``: the header
    CRC (a 20-byte read from the fixed prefix) covers the fingerprint, so
    a file rebuilt in place with different parameters misses even on
    filesystems whose mtime granularity would otherwise alias the rewrite.
    """

    def __init__(self, capacity: int = 4) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, IndexStore]" = OrderedDict()

    def get(self, path: str | Path) -> IndexStore:
        """The cached store for ``path``, opening (and caching) on miss."""
        path = Path(path).resolve()
        try:
            stat = path.stat()
        except OSError as exc:
            raise StoreError(f"cannot read index store {path}: {exc}") from None
        key = (
            str(path),
            stat.st_mtime_ns,
            stat.st_size,
            header_prefix_crc(path),
        )
        with self._lock:
            store = self._entries.get(key)
            if store is not None:
                self._entries.move_to_end(key)
                _HITS_TOTAL.inc()
                return store
        _MISSES_TOTAL.inc()
        # Open outside the lock: mmap setup should not serialise other hits.
        store = IndexStore.open(path)
        evicted = 0
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self._entries.move_to_end(key)
                return existing
            # The new key invalidates every older entry for the same path:
            # they describe file contents that no longer exist (an in-place
            # rebuild — caught by the header CRC even when a same-second
            # rewrite leaves mtime and size unchanged), so keeping them
            # would only pin dead mmaps and crowd out live stores.
            for stale in [k for k in self._entries if k[0] == key[0]]:
                del self._entries[stale]
                evicted += 1
            self._entries[key] = store
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
        if evicted:
            _EVICTIONS_TOTAL.inc(evicted)
        return store

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: Process-wide cache used by path-based service construction and by
#: spawn-pool workers reopening the parent's store.
_DEFAULT_CACHE = StoreCache()


def default_store_cache() -> StoreCache:
    """The process-wide :class:`StoreCache`."""
    return _DEFAULT_CACHE
