"""Command-line interface: ``python -m repro <command>``.

Commands
--------
search
    Align a query (string or FASTA file) against a text (string or FASTA
    file) with a chosen engine and print the hits.
analyze
    Print the Section 6 entry-bound table for an alphabet size.
generate
    Emit a synthetic genome as FASTA.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro import (
    ALAE,
    DNA,
    PROTEIN,
    Blast,
    BwtSw,
    ScoringScheme,
    genome,
    parse_fasta_file,
    write_fasta,
)
from repro.core.analysis import entry_bound
from repro.io.fasta import FastaRecord
from repro.scoring.scheme import blast_scheme_grid

ENGINES = {"alae": ALAE, "bwtsw": BwtSw, "blast": Blast}
ALPHABETS = {"dna": DNA, "protein": PROTEIN}


def _load_sequence(value: str) -> str:
    """Interpret a CLI argument as a FASTA path or a literal sequence."""
    path = Path(value)
    if path.exists():
        records = parse_fasta_file(path)
        return "".join(record.sequence for record in records)
    return value.upper()


def _parse_scheme(value: str) -> ScoringScheme:
    parts = [int(x) for x in value.strip("<>").split(",")]
    if len(parts) != 4:
        raise argparse.ArgumentTypeError(
            "scheme must be sa,sb,sg,ss (e.g. 1,-3,-5,-2)"
        )
    return ScoringScheme(*parts)


def cmd_search(args: argparse.Namespace) -> int:
    text = _load_sequence(args.text)
    query = _load_sequence(args.query)
    alphabet = ALPHABETS[args.alphabet]
    engine_cls = ENGINES[args.engine]
    engine = engine_cls(text, alphabet=alphabet, scheme=args.scheme)
    kwargs = (
        {"threshold": args.threshold}
        if args.threshold is not None
        else {"e_value": args.e_value}
    )
    result = engine.search(query, **kwargs)
    print(f"# engine={args.engine} H={result.threshold} hits={len(result.hits)}")
    print("# t_start\tt_end\tp_end\tscore")
    for hit in list(result.hits)[: args.limit]:
        print(f"{hit.t_start}\t{hit.t_end}\t{hit.p_end}\t{hit.score}")
    stats = result.stats
    print(
        f"# entries calculated={stats.calculated} reused={stats.reused} "
        f"cost={stats.computation_cost} time={stats.elapsed_seconds:.3f}s",
        file=sys.stderr,
    )
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    sigma = ALPHABETS[args.alphabet].size
    print(f"# Section 6 entry bounds, sigma = {sigma}")
    print("# scheme\tq\tcoefficient\texponent")
    for scheme in blast_scheme_grid():
        try:
            bound = entry_bound(scheme, sigma)
        except Exception:  # degenerate for this sigma
            continue
        print(
            f"{scheme}\t{scheme.q}\t{bound.coefficient:.3f}\t"
            f"{bound.exponent:.4f}"
        )
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    alphabet = ALPHABETS[args.alphabet]
    sequence = genome(
        args.length, rng, alphabet=alphabet,
        repeat_fraction=args.repeat_fraction,
    )
    record = FastaRecord(
        header=f"synthetic_{args.alphabet} length={args.length} seed={args.seed}",
        sequence=sequence,
    )
    write_fasta([record], args.out)
    print(f"wrote {args.out}", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    search = sub.add_parser("search", help="run a local-alignment search")
    search.add_argument("text", help="text sequence or FASTA path")
    search.add_argument("query", help="query sequence or FASTA path")
    search.add_argument("--engine", choices=ENGINES, default="alae")
    search.add_argument("--alphabet", choices=ALPHABETS, default="dna")
    search.add_argument(
        "--scheme", type=_parse_scheme, default=ScoringScheme(1, -3, -5, -2),
        help="sa,sb,sg,ss (default 1,-3,-5,-2)",
    )
    search.add_argument("--threshold", type=int, default=None)
    search.add_argument("--e-value", type=float, default=10.0)
    search.add_argument("--limit", type=int, default=50)
    search.set_defaults(func=cmd_search)

    analyze = sub.add_parser("analyze", help="print Section 6 bounds")
    analyze.add_argument("--alphabet", choices=ALPHABETS, default="dna")
    analyze.set_defaults(func=cmd_analyze)

    generate = sub.add_parser("generate", help="emit a synthetic genome")
    generate.add_argument("--length", type=int, default=100_000)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--alphabet", choices=ALPHABETS, default="dna")
    generate.add_argument("--repeat-fraction", type=float, default=0.05)
    generate.add_argument("--out", default="synthetic.fa")
    generate.set_defaults(func=cmd_generate)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
