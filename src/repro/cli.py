"""Command-line interface: ``python -m repro <command>``.

Commands
--------
search
    Align queries (literal sequence or FASTA file, possibly multi-record)
    against a database text (literal or FASTA) and print hits attributed to
    individual database sequences.
search-db
    Batch-search a FASTA query set against a FASTA database, streaming
    attributed hits as each query completes.
serve / query / top
    Keep an index resident behind a TCP socket (``serve``: asyncio server
    with micro-batching, admission control, a result cache, hot index
    reload and an optional ``--metrics-port`` Prometheus scrape endpoint),
    talk to it (``query``: same output format as ``search-db``, so served
    and offline runs byte-diff clean), or watch it live (``top``: per-mode
    qps/latency quantiles, queue pressure, cache hit rate, hottest shard).
index build / info / verify
    Build a persistent index store from a database FASTA, inspect its
    header, or re-verify its checksums.  ``--shards K`` partitions the
    database into K balanced shards — one store per shard plus a
    checksummed manifest — built in parallel with ``--build-workers``.
    ``search`` / ``search-db`` accept ``--index PATH`` pointing at either
    a single store or a shard manifest; sharded serving fans each query
    across every shard and merges results bit-identically to the
    unsharded path (the build-once / serve-many workflow).
analyze
    Print the Section 6 entry-bound table for an alphabet size.
generate
    Emit a synthetic genome as FASTA.

All searches run through :class:`repro.service.SearchService`, so
multi-record FASTA inputs keep their per-sequence offset table and hits
spanning a concatenation boundary are dropped instead of reported.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import logging
import signal
import sys
import time
from pathlib import Path

import numpy as np

from repro import DNA, PROTEIN, ScoringScheme, genome, write_fasta
from repro.align.types import SearchStats
from repro.analysis import CHECKERS, run_lint
from repro.core.analysis import entry_bound
from repro.engine import DEFAULT_WORD_SIZE, MODE_ENGINE_NAMES, MODES
from repro.errors import ReproError, ScoringError
from repro.io.database import SequenceDatabase
from repro.io.fasta import FastaRecord, parse_fasta_file
from repro.obs import (
    Catalog,
    ReplayPlan,
    configure_logging,
    format_spans,
    maybe_register_build,
    replay_plan,
    run_top,
    span_tree,
)
from repro.scoring.scheme import DEFAULT_SCHEME, blast_scheme_grid
from repro.server import SearchServer, ServerClient, wait_until_ready
from repro.service import SERVICE_ENGINES, SearchService, ShardedSearchService
from repro.store import IndexStore, ShardedStore, is_manifest
from repro.store.format import read_header as read_store_header

logger = logging.getLogger("repro.cli")

ALPHABETS = {"dna": DNA, "protein": PROTEIN}


def _load_records(value: str, default_id: str) -> list[FastaRecord]:
    """Interpret a CLI argument as a FASTA path or a literal sequence."""
    path = Path(value)
    if path.exists():
        return parse_fasta_file(path)
    return [FastaRecord(header=default_id, sequence=value.upper())]


def _load_database(value: str) -> SequenceDatabase:
    """Load a text argument as a database, keeping the offset table."""
    return SequenceDatabase(_load_records(value, default_id="text"))


def _parse_scheme(value: str) -> ScoringScheme:
    parts = value.strip("<>").split(",")
    if len(parts) != 4:
        raise argparse.ArgumentTypeError(
            "scheme must be sa,sb,sg,ss (e.g. 1,-3,-5,-2)"
        )
    try:
        sa, sb, sg, ss = (int(x) for x in parts)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"scheme components must be integers, got {value!r}"
        ) from None
    try:
        return ScoringScheme(sa, sb, sg, ss)
    except ScoringError as exc:
        raise argparse.ArgumentTypeError(
            f"scheme {value!r} is invalid: {exc} (e.g. 1,-3,-5,-2)"
        ) from None


def _make_service(
    args: argparse.Namespace, database: SequenceDatabase | None
) -> "SearchService | ShardedSearchService":
    """A service over ``database`` or over ``--index`` (exactly one is set).

    ``--index`` accepts a single-store file or a shard manifest — the first
    bytes decide, so callers never name the layout.  ``--alphabet`` /
    ``--scheme`` stay ``None`` unless given on the command line, so an
    indexed service adopts the store's fingerprint and an explicit flag
    that contradicts it is rejected instead of silently ignored.
    """
    alphabet = ALPHABETS[args.alphabet] if args.alphabet else None
    mode = getattr(args, "mode", "exact") or "exact"
    if args.index is not None and is_manifest(args.index):
        if args.engine != "alae":
            raise ReproError(
                "a sharded index holds ALAE indexes; other engines need a "
                "database to build from"
            )
        return ShardedSearchService(
            args.index,
            alphabet=alphabet,
            scheme=args.scheme,
            mode=mode,
            workers=args.workers,
            executor=args.executor,
        )
    return SearchService(
        database,
        store=args.index,
        engine=args.engine,
        mode=mode,
        alphabet=alphabet,
        scheme=args.scheme,
        workers=args.workers,
        executor=args.executor,
    )


def _hit_header() -> None:
    print("# query\tsequence\tt_start\tt_end\tp_end\tscore")


def _print_result(
    query_id: str, engine: str, threshold: int, hits, dropped: int, limit: int
) -> None:
    """One query's hit block — shared by ``search-db`` and ``query`` so a
    served run byte-diffs clean against the offline run of the same index."""
    print(
        f"# query={query_id} engine={engine} H={threshold} "
        f"hits={len(hits)} dropped={dropped}"
    )
    for hit in hits[:limit]:
        print(
            f"{query_id}\t{hit.sequence_id}\t{hit.t_start}\t"
            f"{hit.t_end}\t{hit.p_end}\t{hit.score}"
        )


def _search_kwargs(args: argparse.Namespace) -> dict:
    kwargs = (
        {"threshold": args.threshold}
        if args.threshold is not None
        else {"e_value": args.e_value}
    )
    if args.top_k is not None:
        kwargs["top_k"] = args.top_k
    if getattr(args, "mode", None) is not None:
        kwargs["mode"] = args.mode
    return kwargs


def _engine_label(args: argparse.Namespace) -> str:
    """The engine name printed per query: mode-specific unless exact."""
    mode = getattr(args, "mode", "exact") or "exact"
    return args.engine if mode == "exact" else MODE_ENGINE_NAMES[mode]


def _run_batch(
    service: "SearchService | ShardedSearchService",
    queries: list[FastaRecord],
    args: argparse.Namespace,
) -> int:
    """Stream a batch through the service, printing attributed hits."""
    _hit_header()
    engine_label = _engine_label(args)
    total_hits = dropped = count = 0
    stats = SearchStats()
    started = time.perf_counter()
    for result in service.iter_results(queries, **_search_kwargs(args)):
        count += 1
        total_hits += len(result.hits)
        dropped += result.dropped_boundary
        stats.merge(result.stats)
        _print_result(
            result.query_id, engine_label, result.threshold, result.hits,
            result.dropped_boundary, args.limit,
        )
    wall = time.perf_counter() - started
    print(
        f"# queries={count} hits={total_hits} dropped={dropped} "
        f"entries calculated={stats.calculated} reused={stats.reused} "
        f"cost={stats.computation_cost} work={stats.elapsed_seconds:.3f}s "
        f"wall={wall:.3f}s",
        file=sys.stderr,
    )
    _print_mode_summary(getattr(args, "mode", "exact"), stats, count)
    return 0


def _print_mode_summary(mode: str | None, stats: SearchStats, count: int) -> None:
    """Non-exact tiers get one extra stderr line of mode accounting.

    ``SearchStats.merge`` *sums* extra entries across queries, so recall
    is recomputed from the summed hit counts (falling back to the mean of
    the per-query ratios when counts are absent).  Exact runs print
    nothing — their stdout AND stderr stay byte-identical.
    """
    if mode in (None, "exact") or count == 0:
        return
    extra = stats.extra
    parts = [f"# mode={mode}"]
    for key in ("seeds", "ungapped_extensions", "gapped",
                "candidate_hits", "verify_windows", "verified_hits"):
        if key in extra:
            parts.append(f"{key}={extra[key]}")
    if "recall_vs_exact" in extra:
        if extra.get("exact_hits"):
            # Ratio of the summed counts, not the summed per-query ratios.
            recall = extra["verified_hits"] / extra["exact_hits"]
        else:
            recall = extra["recall_vs_exact"] / count
        parts.append(f"recall_vs_exact={recall:.4f}")
    print(" ".join(parts), file=sys.stderr)


def _check_text_vs_index(args: argparse.Namespace, positional: str) -> str | None:
    """Enforce "exactly one of the database argument and ``--index``"."""
    value = getattr(args, positional)
    if args.index is not None and value is not None:
        return f"pass either a {positional} argument or --index, not both"
    if args.index is None and value is None:
        return f"a {positional} argument or --index is required"
    return None


def cmd_search(args: argparse.Namespace) -> int:
    problem = _check_text_vs_index(args, "text")
    if problem:
        print(f"error: {problem}", file=sys.stderr)
        return 2
    database = _load_database(args.text) if args.index is None else None
    queries = _load_records(args.query, default_id="query")
    service = _make_service(args, database)
    return _run_batch(service, queries, args)


def cmd_search_db(args: argparse.Namespace) -> int:
    problem = _check_text_vs_index(args, "database")
    if problem:
        print(f"error: {problem}", file=sys.stderr)
        return 2
    query_path = Path(args.queries)
    paths = [(query_path, "queries")]
    if args.index is None:
        paths.append((Path(args.database), "database"))
    for path, label in paths:
        if not path.exists():
            print(f"error: {label} FASTA {path} does not exist", file=sys.stderr)
            return 2
    database = (
        SequenceDatabase.from_fasta(args.database)
        if args.index is None
        else None
    )
    queries = parse_fasta_file(query_path)
    service = _make_service(args, database)
    source = (
        f"database={Path(args.database).name}"
        if args.index is None
        else f"index={Path(args.index).name}"
    )
    if isinstance(service, ShardedSearchService):
        shape = (
            f"sequences={service.record_count} total={service.total_length} "
            f"shards={service.shard_count}"
        )
    else:
        shape = (
            f"sequences={len(service.database)} "
            f"total={service.database.total_length}"
        )
    print(f"# {source} {shape} queries={len(queries)}", file=sys.stderr)
    return _run_batch(service, queries, args)


def cmd_serve(args: argparse.Namespace) -> int:
    # The serving process is the one long-lived entry point: route its
    # diagnostics through the repro.* logger hierarchy instead of bare
    # prints, so --log-level / --log-json govern everything it emits.
    configure_logging(args.log_level, json_lines=args.log_json)
    index = Path(args.index)
    if not index.exists():
        print(f"error: index {index} does not exist", file=sys.stderr)
        return 2
    if is_manifest(index) and not args.shards_ok:
        print(
            f"error: {index} is a shard manifest; serving it keeps every "
            f"shard engine resident in this process — pass --shards-ok to "
            f"confirm",
            file=sys.stderr,
        )
        return 2
    server = SearchServer(
        index,
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        linger=args.linger_ms / 1000.0,
        max_queue=args.max_queue,
        cache_size=args.cache_size,
        reload_poll=args.reload_poll,
        workers=args.workers,
        executor=args.executor,
        mode=args.mode,
        request_log=args.request_log,
        metrics_port=args.metrics_port,
    )

    async def _amain() -> None:
        await server.start()
        if server.metrics_port is not None:
            logger.info(
                "metrics on http://%s:%d/metrics",
                args.host, server.metrics_port,
            )
        logger.info(
            "batch shape: max_batch=%d linger=%gms queue=%d cache=%d",
            args.max_batch, args.linger_ms, args.max_queue, args.cache_size,
        )
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    signum, lambda: loop.create_task(server.stop())
                )
            except NotImplementedError:  # e.g. non-Unix event loops
                pass
        await server.serve_forever()

    try:
        asyncio.run(_amain())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    if args.queries is None and not (args.stats or args.shutdown):
        print(
            "error: a queries argument is required (or --stats/--shutdown)",
            file=sys.stderr,
        )
        return 2
    if args.wait > 0:
        wait_until_ready(args.host, args.port, timeout=args.wait)
    with ServerClient(args.host, args.port, timeout=args.timeout) as client:
        if args.stats:
            response = client.stats()
            print(json.dumps(response, indent=2, sort_keys=True))
            return 0
        if args.shutdown:
            client.shutdown()
            print("server stopping", file=sys.stderr)
            return 0
        queries = _load_records(args.queries, default_id="query")
        started = time.perf_counter()
        trace = args.trace or args.trace_out is not None
        batch = client.search(queries, trace=trace, **_search_kwargs(args))
        wall = time.perf_counter() - started
    _hit_header()
    total_hits = dropped = cached = 0
    served_stats = SearchStats()
    for result in batch.results:
        total_hits += len(result.hits)
        dropped += result.dropped_boundary
        cached += result.cached
        for key, value in result.extra.items():
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                served_stats.extra[key] = served_stats.extra.get(key, 0) + value
        _print_result(
            result.query_id, batch.engine, result.threshold, result.hits,
            result.dropped_boundary, args.limit,
        )
    print(
        f"# queries={len(batch.results)} hits={total_hits} "
        f"dropped={dropped} cached={cached} "
        f"generation={batch.generation} wall={wall:.3f}s",
        file=sys.stderr,
    )
    _print_mode_summary(batch.mode, served_stats, len(batch.results))
    if args.trace:
        # Span breakdowns are stderr-only: stdout keeps its byte-for-byte
        # parity with the offline search-db path.
        for result in batch.results:
            rendered = format_spans(result.spans) if result.spans else "(cached)"
            print(f"# trace {result.query_id}: {rendered}", file=sys.stderr)
    if args.trace_out is not None:
        # Canonical span-tree JSON for tooling (sorted keys, trailing
        # newline); stdout stays byte-identical — only the file is written.
        document = {
            "engine": batch.engine,
            "generation": batch.generation,
            "mode": batch.mode,
            "queries": [
                {
                    "id": result.query_id,
                    "cached": result.cached,
                    **span_tree(result.spans),
                }
                for result in batch.results
            ],
        }
        Path(args.trace_out).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n"
        )
        print(f"# trace tree -> {args.trace_out}", file=sys.stderr)
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    if args.wait > 0:
        wait_until_ready(args.host, args.port, timeout=args.wait)
    with ServerClient(args.host, args.port, timeout=args.timeout) as client:
        try:
            return run_top(
                client, interval=args.interval, once=args.once,
            )
        except KeyboardInterrupt:
            return 0
        except BrokenPipeError:
            # `repro top --once | head` closing stdout early is not an error.
            return 0


def cmd_index_build(args: argparse.Namespace) -> int:
    out = args.out
    if out is None:
        # The <database>.idx default only makes sense for a real file; a
        # literal sequence would otherwise become the output filename.
        if not Path(args.database).exists():
            print(
                "error: --out is required when the database is a literal "
                "sequence",
                file=sys.stderr,
            )
            return 2
        out = f"{args.database}.idx"
    database = _load_database(args.database)
    kmer_k = None if args.no_kmer else args.kmer_k
    build_started = time.perf_counter()
    if args.shards > 1:
        sharded = ShardedStore.build(
            database,
            out,
            shards=args.shards,
            alphabet=ALPHABETS[args.alphabet],
            scheme=args.scheme or DEFAULT_SCHEME,
            occ_block=args.occ_block,
            sa_sample=args.sa_sample,
            build_workers=args.build_workers,
            kmer_k=kmer_k,
        )
        build_seconds = time.perf_counter() - build_started
        total_bytes = sum(
            sharded.shard_path(i).stat().st_size
            for i in range(sharded.shard_count)
        )
        lengths = "/".join(str(n) for n in sharded.shard_lengths())
        print(
            f"wrote {sharded.path} + {sharded.shard_count} shard stores "
            f"({total_bytes:,} bytes, {len(database)} sequences, "
            f"{database.total_length:,} chars, shard lengths {lengths}, "
            f"fingerprint {sharded.fingerprint_key})",
            file=sys.stderr,
        )
        _register_build(sharded.path, build_seconds, args.catalog)
        return 0
    store = IndexStore.build(
        database,
        alphabet=ALPHABETS[args.alphabet],
        scheme=args.scheme or DEFAULT_SCHEME,
        occ_block=args.occ_block,
        sa_sample=args.sa_sample,
        kmer_k=kmer_k,
    )
    path = store.save(out)
    build_seconds = time.perf_counter() - build_started
    print(
        f"wrote {path} ({path.stat().st_size:,} bytes, "
        f"{len(database)} sequences, {database.total_length:,} chars, "
        f"fingerprint {store.fingerprint_key})",
        file=sys.stderr,
    )
    _register_build(path, build_seconds, args.catalog)
    return 0


def _register_build(
    index_path: Path, build_seconds: float, catalog: str | None
) -> None:
    """Catalog a finished build (``--catalog`` or ``REPRO_CATALOG``)."""
    store_id = maybe_register_build(
        index_path, build_seconds=build_seconds, catalog_path=catalog
    )
    if store_id is not None:
        print(
            f"catalogued {index_path} as store #{store_id} "
            f"(build {build_seconds:.2f}s)",
            file=sys.stderr,
        )


def cmd_index_info(args: argparse.Namespace) -> int:
    if is_manifest(args.path):
        sharded = ShardedStore.open(args.path)
        print(f"# {args.path} (sharded)")
        print(f"fingerprint\t{sharded.fingerprint_key}")
        print(f"sequences\t{sharded.record_count}")
        print(f"total_length\t{sharded.total_length}")
        print(f"shards\t{sharded.shard_count}")
        print("# shard\tpath\trecords\tlength\theader_crc")
        for i, spec in enumerate(sharded.payload["shards"]):
            print(
                f"{i}\t{spec['path']}\t{len(spec['records'])}\t"
                f"{spec['total_length']}\t{spec['header_crc']:08x}"
            )
        return 0
    store = IndexStore.open(args.path)
    meta = store.header["database"]
    print(f"# {args.path}")
    print(f"fingerprint\t{store.fingerprint_key}")
    print(f"sequences\t{meta['records']}")
    print(f"total_length\t{meta['total_length']}")
    print("# array\tdtype\tshape\tbytes\tcrc32")
    for spec in store.header["arrays"]:
        shape = "x".join(str(s) for s in spec["shape"])
        print(
            f"{spec['name']}\t{spec['dtype']}\t{shape}\t{spec['nbytes']}\t"
            f"{spec['crc32']:08x}"
        )
    return 0


def cmd_index_verify(args: argparse.Namespace) -> int:
    if is_manifest(args.path):
        problems = ShardedStore.verify(args.path)
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}", file=sys.stderr)
            return 1
        sharded = ShardedStore.open(args.path)
        print(
            f"OK: {args.path} ({sharded.shard_count} shards, manifest and "
            f"all shard checksums match)",
            file=sys.stderr,
        )
        return 0
    problems = IndexStore.verify(args.path)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    header, _ = read_store_header(args.path)
    print(
        f"OK: {args.path} ({len(header['arrays'])} arrays, "
        f"all checksums match)",
        file=sys.stderr,
    )
    return 0


def cmd_catalog_ls(args: argparse.Namespace) -> int:
    with Catalog(args.db) as catalog:
        rows = catalog.stores()
        bench_count = len(catalog.benchmarks())
        request_count = catalog.request_count()
        print(
            f"# {args.db} (schema v{catalog.schema_version}, "
            f"{len(rows)} stores, {bench_count} bench results, "
            f"{request_count} logged requests)"
        )
        print("# id\tkind\tshards\trecords\tlength\tbytes\tbuild_s\tfingerprint\tpath")
        for row in rows:
            build = (
                f"{row['build_seconds']:.2f}"
                if row["build_seconds"] is not None
                else "-"
            )
            print(
                f"{row['store_id']}\t{row['kind']}\t{row['shard_count']}\t"
                f"{row['records']}\t{row['total_length']}\t"
                f"{row['file_bytes']}\t{build}\t{row['fingerprint']}\t"
                f"{row['path']}"
            )
    return 0


def cmd_catalog_show(args: argparse.Namespace) -> int:
    with Catalog(args.db) as catalog:
        try:
            store_id = int(args.store)
        except ValueError:
            resolved = catalog.store_id_for(args.store)
            if resolved is None:
                print(
                    f"error: no store with path {args.store!r} in {args.db}",
                    file=sys.stderr,
                )
                return 2
            store_id = resolved
        row = catalog.store(store_id)
        print(f"# store #{row['store_id']}: {row['path']}")
        for key in (
            "kind", "fingerprint", "records", "total_length", "shard_count",
            "file_bytes", "created_utc", "build_seconds",
        ):
            print(f"{key}\t{row[key]}")
        print(f"identity_crc\t{int(row['identity_crc']):#010x}")
        shards = catalog.shards(store_id)
        if shards:
            print("# shard\tpath\trecords\tlength\theader_crc")
            for shard in shards:
                print(
                    f"{shard['shard']}\t{shard['path']}\t{shard['records']}\t"
                    f"{shard['total_length']}\t{int(shard['header_crc']):08x}"
                )
        benches = catalog.benchmarks(store_id)
        if benches:
            print("# bench\tname\tcreated\tmetrics")
            for bench in benches:
                print(
                    f"{bench['bench_id']}\t{bench['name']}\t"
                    f"{bench['created_utc']}\t{bench['metrics']}"
                )
    return 0


def cmd_catalog_verify_all(args: argparse.Namespace) -> int:
    with Catalog(args.db) as catalog:
        count = len(catalog.stores())
        problems = catalog.verify_all()
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print(
        f"OK: {count} catalogued store(s) verified (checksums and "
        f"identities match)",
        file=sys.stderr,
    )
    return 0


def cmd_catalog_record_bench(args: argparse.Namespace) -> int:
    if args.metrics_file is not None:
        metrics = json.loads(Path(args.metrics_file).read_text())
    else:
        metrics = json.loads(args.metrics)
    if not isinstance(metrics, dict):
        print("error: metrics must be a JSON object", file=sys.stderr)
        return 2
    with Catalog(args.db) as catalog:
        bench_id = catalog.record_bench(
            args.name,
            metrics,
            store_path=args.store,
            fingerprint=args.fingerprint,
        )
    print(f"recorded bench #{bench_id} ({args.name})", file=sys.stderr)
    return 0


def _replay_text(index_path: str | Path) -> str:
    """The served database text, for synthesizing replay queries.

    Shard stores carry contiguous record ranges in manifest order, so
    concatenating them reproduces the unsharded text.
    """
    index_path = Path(index_path)
    if is_manifest(index_path):
        sharded = ShardedStore.open(index_path)
        return "".join(
            IndexStore.open(sharded.shard_path(i)).database().text
            for i in range(sharded.shard_count)
        )
    return IndexStore.open(index_path).database().text


def cmd_bench(args: argparse.Namespace) -> int:
    if not args.plan_only and args.index is None:
        print(
            "error: --index is required unless --plan-only", file=sys.stderr
        )
        return 2
    plan = ReplayPlan.from_catalog(
        args.replay,
        seed=args.seed,
        count=args.count,
        rate_scale=args.rate_scale,
    )
    if args.plan_out is not None:
        Path(args.plan_out).write_text(plan.to_json())
        print(
            f"wrote replay plan ({len(plan.events)} events, seed "
            f"{plan.seed}) to {args.plan_out}",
            file=sys.stderr,
        )
    if args.plan_only:
        return 0
    text = _replay_text(args.index)
    if args.port is not None:
        if args.wait > 0:
            wait_until_ready(args.host, args.port, timeout=args.wait)
        report = replay_plan(
            plan, host=args.host, port=args.port, text=text, pace=args.pace,
        )
    else:
        index = Path(args.index)
        service = (
            ShardedSearchService(index)
            if is_manifest(index)
            else SearchService(store=index)
        )
        report = replay_plan(plan, service=service, text=text, pace=args.pace)
    print(report.format())
    with Catalog(args.replay) as catalog:
        bench_id = catalog.record_bench(
            "replay",
            report.to_dict(),
            store_path=args.index if Path(args.index).exists() else None,
        )
    print(
        f"recorded capacity report as bench #{bench_id} in {args.replay}",
        file=sys.stderr,
    )
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    if args.list_checkers:
        print("# code\tname\tscope\torigin")
        for code, checker in sorted(CHECKERS.items()):
            print(f"{code}\t{checker.name}\t{checker.scope}\t{checker.origin}")
        return 0
    report = run_lint(args.paths, dump_graph=args.dump_graph)
    if args.dump_graph:
        print(f"flow graph written to {args.dump_graph}", file=sys.stderr)
    if args.format == "json":
        print(report.format_json())
    elif args.format == "sarif":
        print(report.format_sarif())
    else:
        print(report.format_text())
    return report.exit_code


def cmd_analyze(args: argparse.Namespace) -> int:
    sigma = ALPHABETS[args.alphabet].size
    print(f"# Section 6 entry bounds, sigma = {sigma}")
    print("# scheme\tq\tcoefficient\texponent")
    for scheme in blast_scheme_grid():
        try:
            bound = entry_bound(scheme, sigma)
        except ScoringError:  # degenerate for this sigma
            continue
        print(
            f"{scheme}\t{scheme.q}\t{bound.coefficient:.3f}\t"
            f"{bound.exponent:.4f}"
        )
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    alphabet = ALPHABETS[args.alphabet]
    sequence = genome(
        args.length, rng, alphabet=alphabet,
        repeat_fraction=args.repeat_fraction,
    )
    record = FastaRecord(
        header=f"synthetic_{args.alphabet} length={args.length} seed={args.seed}",
        sequence=sequence,
    )
    write_fasta([record], args.out)
    print(f"wrote {args.out}", file=sys.stderr)
    return 0


def _add_search_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--engine", choices=sorted(SERVICE_ENGINES), default="alae")
    parser.add_argument(
        "--mode", choices=MODES, default="exact",
        help="search mode: exact (bit-identical ALAE, default), fast "
        "(seed-and-extend, score-ranked), or verified (fast candidates "
        "rescored exactly, with measured recall)",
    )
    parser.add_argument(
        "--alphabet", choices=ALPHABETS, default=None,
        help="dna or protein (default dna, or the --index fingerprint)",
    )
    parser.add_argument(
        "--scheme", type=_parse_scheme, default=None,
        help="sa,sb,sg,ss (default 1,-3,-5,-2, or the --index fingerprint)",
    )
    parser.add_argument(
        "--index", default=None, metavar="PATH",
        help="serve from a prebuilt index store or shard manifest (see "
        "`repro index build [--shards K]`) instead of building indexes "
        "from the database argument",
    )
    parser.add_argument("--threshold", type=int, default=None)
    parser.add_argument("--e-value", type=float, default=10.0)
    parser.add_argument(
        "--top-k", type=int, default=None, metavar="K",
        help="rank each query's hits by score and keep only the best K",
    )
    parser.add_argument("--limit", type=int, default=50, help="max printed hits per query")
    parser.add_argument("--workers", type=int, default=1, help="worker pool size")
    parser.add_argument(
        "--executor", choices=("threads", "processes", "spawn"), default="threads",
        help="worker pool type (processes forks the shared engine; spawn "
        "reopens an --index store in fresh workers)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    search = sub.add_parser("search", help="run a local-alignment search")
    search.add_argument(
        "text", nargs="?", default=None,
        help="text sequence or FASTA path (multi-record ok); omit with --index",
    )
    search.add_argument("query", help="query sequence or FASTA path (multi-record ok)")
    _add_search_options(search)
    search.set_defaults(func=cmd_search)

    search_db = sub.add_parser(
        "search-db", help="batch-search a FASTA query set against a FASTA database"
    )
    search_db.add_argument(
        "database", nargs="?", default=None,
        help="database FASTA path; omit with --index",
    )
    search_db.add_argument("queries", help="query FASTA path")
    _add_search_options(search_db)
    search_db.set_defaults(func=cmd_search_db)

    serve = sub.add_parser(
        "serve",
        help="serve an index over TCP (resident engine, micro-batching, "
        "hot reload)",
    )
    serve.add_argument(
        "--index", required=True, metavar="PATH",
        help="prebuilt index store or shard manifest to serve",
    )
    serve.add_argument(
        "--shards-ok", action="store_true",
        help="confirm serving a shard manifest (keeps every shard engine "
        "resident in this process)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7781,
        help="TCP port (0 picks an ephemeral port, printed on stderr)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=16, metavar="N",
        help="max queries coalesced into one engine batch",
    )
    serve.add_argument(
        "--linger-ms", type=float, default=2.0,
        help="max milliseconds a batch waits for more queries",
    )
    serve.add_argument(
        "--max-queue", type=int, default=256, metavar="N",
        help="admission-control cap on pending queries (overload beyond)",
    )
    serve.add_argument(
        "--cache-size", type=int, default=1024, metavar="N",
        help="result LRU capacity in queries (0 disables caching)",
    )
    serve.add_argument(
        "--reload-poll", type=float, default=2.0, metavar="SECONDS",
        help="how often to check the index file for a hot reload "
        "(0 disables polling; the reload RPC still works)",
    )
    serve.add_argument(
        "--workers", type=int, default=1,
        help="worker-pool size inside one batch (the service layer's pool)",
    )
    serve.add_argument(
        "--executor", choices=("threads", "processes", "spawn"),
        default="threads", help="service worker pool type",
    )
    serve.add_argument(
        "--mode", choices=MODES, default="exact",
        help="default search mode for requests without their own 'mode' "
        "field (requests can always override per call)",
    )
    serve.add_argument(
        "--metrics-port", type=int, default=None, metavar="P",
        help="also serve Prometheus text exposition on GET "
        "http://HOST:P/metrics (0 picks an ephemeral port, logged on "
        "stderr); scrape-able by any Prometheus-compatible collector",
    )
    serve.add_argument(
        "--request-log", default=None, metavar="CATALOG.db",
        help="append one structured row per request to this catalog "
        "database (query hash, mode, latency, cache hit, batch size, "
        "per-shard timings); the raw material for `repro bench --replay`",
    )
    serve.add_argument(
        "--log-level", default="info",
        choices=("debug", "info", "warning", "error"),
        help="server diagnostic verbosity on stderr (default info)",
    )
    serve.add_argument(
        "--log-json", action="store_true",
        help="emit diagnostics as one JSON object per line",
    )
    serve.set_defaults(func=cmd_serve)

    query = sub.add_parser(
        "query", help="query a running `repro serve` instance"
    )
    query.add_argument(
        "queries", nargs="?", default=None,
        help="query FASTA path or literal sequence; omit with "
        "--stats/--shutdown",
    )
    query.add_argument("--host", default="127.0.0.1")
    query.add_argument("--port", type=int, default=7781)
    query.add_argument("--threshold", type=int, default=None)
    query.add_argument("--e-value", type=float, default=10.0)
    query.add_argument(
        "--top-k", type=int, default=None, metavar="K",
        help="rank each query's hits by score and keep only the best K",
    )
    query.add_argument(
        "--mode", choices=MODES, default=None,
        help="search mode (exact/fast/verified); omit to use the "
        "server's default",
    )
    query.add_argument(
        "--limit", type=int, default=50, help="max printed hits per query"
    )
    query.add_argument("--timeout", type=float, default=60.0)
    query.add_argument(
        "--wait", type=float, default=0.0, metavar="SECONDS",
        help="wait up to SECONDS for the server to come up first",
    )
    query.add_argument(
        "--trace", action="store_true",
        help="print per-query span breakdowns (engine/locate/merge/shardN "
        "milliseconds) on stderr; stdout stays byte-identical",
    )
    query.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="also write the per-query span tree as canonical JSON "
        "(sorted keys) to FILE; implies trace collection, stdout stays "
        "byte-identical",
    )
    query.add_argument(
        "--stats", action="store_true",
        help="print the server's stats snapshot as JSON and exit",
    )
    query.add_argument(
        "--shutdown", action="store_true",
        help="ask the server to stop gracefully and exit",
    )
    query.set_defaults(func=cmd_query)

    top = sub.add_parser(
        "top",
        help="live terminal dashboard over a running `repro serve` "
        "(qps/p50/p90/p99 per mode, queue depth, cache hit rate, "
        "hottest shard)",
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=7781)
    top.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="seconds between polls (default 2)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="print a single frame without clearing the screen and exit "
        "(scripting/CI)",
    )
    top.add_argument("--timeout", type=float, default=60.0)
    top.add_argument(
        "--wait", type=float, default=0.0, metavar="SECONDS",
        help="wait up to SECONDS for the server to come up first",
    )
    top.set_defaults(func=cmd_top)

    index = sub.add_parser(
        "index", help="build / inspect / verify persistent index stores"
    )
    index_sub = index.add_subparsers(dest="index_command", required=True)

    build = index_sub.add_parser(
        "build", help="build all indexes for a database and save them"
    )
    build.add_argument("database", help="database FASTA path or literal sequence")
    build.add_argument(
        "--out", default=None, metavar="PATH",
        help="output store path (default: <database>.idx)",
    )
    build.add_argument("--alphabet", choices=ALPHABETS, default="dna")
    build.add_argument(
        "--scheme", type=_parse_scheme, default=None,
        help="sa,sb,sg,ss (default 1,-3,-5,-2)",
    )
    build.add_argument("--occ-block", type=int, default=128)
    build.add_argument("--sa-sample", type=int, default=16)
    build.add_argument(
        "--shards", type=int, default=1, metavar="K",
        help="partition the database into K balanced shards and write a "
        "manifest plus one store per shard (default 1: a single store)",
    )
    build.add_argument(
        "--build-workers", type=int, default=1, metavar="N",
        help="build shard stores in an N-process pool (with --shards)",
    )
    build.add_argument(
        "--kmer-k", type=int, default=DEFAULT_WORD_SIZE, metavar="K",
        help="k-mer word size persisted for the fast tier "
        f"(default {DEFAULT_WORD_SIZE})",
    )
    build.add_argument(
        "--no-kmer", action="store_true",
        help="skip the k-mer aux section (fast/verified modes then build "
        "their index lazily at serve time)",
    )
    build.add_argument(
        "--catalog", default=None, metavar="CATALOG.db",
        help="register the built store in this catalog (defaults to the "
        "REPRO_CATALOG env var; neither set means no registration)",
    )
    build.set_defaults(func=cmd_index_build)

    info = index_sub.add_parser("info", help="print a store's header")
    info.add_argument("path", help="index store path")
    info.set_defaults(func=cmd_index_info)

    verify = index_sub.add_parser(
        "verify", help="recompute every checksum of a store"
    )
    verify.add_argument("path", help="index store path")
    verify.set_defaults(func=cmd_index_verify)

    catalog = sub.add_parser(
        "catalog",
        help="inspect / verify the durable control-plane catalog",
    )
    catalog_sub = catalog.add_subparsers(dest="catalog_command", required=True)

    cat_ls = catalog_sub.add_parser("ls", help="list catalogued stores")
    cat_ls.add_argument("db", help="catalog database path")
    cat_ls.set_defaults(func=cmd_catalog_ls)

    cat_show = catalog_sub.add_parser(
        "show", help="show one store's layout, checksums and bench history"
    )
    cat_show.add_argument("db", help="catalog database path")
    cat_show.add_argument("store", help="store id or index path")
    cat_show.set_defaults(func=cmd_catalog_show)

    cat_verify = catalog_sub.add_parser(
        "verify-all",
        help="re-verify every catalogued store's checksums and identity",
    )
    cat_verify.add_argument("db", help="catalog database path")
    cat_verify.set_defaults(func=cmd_catalog_verify_all)

    cat_bench = catalog_sub.add_parser(
        "record-bench", help="record a benchmark result against a store"
    )
    cat_bench.add_argument("db", help="catalog database path")
    cat_bench.add_argument("name", help="benchmark name (e.g. engine_hotpath)")
    cat_bench.add_argument(
        "--metrics", default="{}",
        help="metrics as an inline JSON object",
    )
    cat_bench.add_argument(
        "--metrics-file", default=None, metavar="PATH",
        help="read the metrics JSON object from a file instead",
    )
    cat_bench.add_argument(
        "--store", default=None, metavar="PATH",
        help="index path the result ran against (registered if absent)",
    )
    cat_bench.add_argument(
        "--fingerprint", default=None,
        help="index fingerprint for store-less engine benches",
    )
    cat_bench.set_defaults(func=cmd_catalog_record_bench)

    bench = sub.add_parser(
        "bench",
        help="replay a logged workload against an index or server and "
        "report capacity",
    )
    bench.add_argument(
        "--replay", required=True, metavar="CATALOG.db",
        help="catalog database holding the request log to replay",
    )
    bench.add_argument(
        "--index", default=None, metavar="PATH",
        help="index store or shard manifest to replay against (also the "
        "source text for synthesized queries); required unless --plan-only",
    )
    bench.add_argument(
        "--host", default="127.0.0.1",
        help="with --port: replay against a running `repro serve`",
    )
    bench.add_argument(
        "--port", type=int, default=None,
        help="replay against the server at --host:--port instead of a "
        "local in-process service",
    )
    bench.add_argument(
        "--wait", type=float, default=0.0, metavar="SECONDS",
        help="wait up to SECONDS for the server to come up first",
    )
    bench.add_argument(
        "--seed", type=int, default=0,
        help="replay-plan seed (same log + same seed = byte-identical plan)",
    )
    bench.add_argument(
        "--count", type=int, default=None, metavar="N",
        help="replay N requests (default: as many as were logged)",
    )
    bench.add_argument(
        "--rate-scale", type=float, default=1.0, metavar="X",
        help="scale the logged arrival rate by X (with --pace)",
    )
    bench.add_argument(
        "--pace", action="store_true",
        help="honour the plan's arrival offsets instead of replaying "
        "back-to-back",
    )
    bench.add_argument(
        "--plan-out", default=None, metavar="PATH",
        help="write the deterministic replay plan as canonical JSON",
    )
    bench.add_argument(
        "--plan-only", action="store_true",
        help="stop after constructing (and optionally writing) the plan",
    )
    bench.set_defaults(func=cmd_bench)

    lint = sub.add_parser(
        "lint",
        help="run the repo's AST invariant checkers (the repro-lint gate)",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="finding output format (json is the CI gate's artifact; "
        "sarif feeds GitHub code scanning)",
    )
    lint.add_argument(
        "--list-checkers", action="store_true",
        help="print the invariant catalog (code, name, scope, origin) "
        "and exit",
    )
    lint.add_argument(
        "--dump-graph", metavar="PATH", default=None,
        help="write the flow index (call graph, lock identities, "
        "acquisition-order edges) as canonical JSON — byte-identical "
        "across runs on the same tree",
    )
    lint.set_defaults(func=cmd_lint)

    analyze = sub.add_parser("analyze", help="print Section 6 bounds")
    analyze.add_argument("--alphabet", choices=ALPHABETS, default="dna")
    analyze.set_defaults(func=cmd_analyze)

    generate = sub.add_parser("generate", help="emit a synthetic genome")
    generate.add_argument("--length", type=int, default=100_000)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--alphabet", choices=ALPHABETS, default="dna")
    generate.add_argument("--repeat-fraction", type=float, default=0.05)
    generate.add_argument("--out", default="synthetic.fa")
    generate.set_defaults(func=cmd_generate)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
