"""Hash index of the text's k-mers — the seeding substrate of the BLAST baseline.

BLAST decomposes the *query* into words and looks them up against the
database; we invert the roles at build time (index the text once, scan query
words at search time), which is the standard in-memory arrangement.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np


class KmerIndex:
    """Map every k-mer of a text to the numpy array of its 1-based starts."""

    def __init__(self, text: str, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.text = text
        self.k = k
        buckets: dict[str, list[int]] = defaultdict(list)
        for start0 in range(len(text) - k + 1):
            buckets[text[start0 : start0 + k]].append(start0 + 1)
        self._buckets = {
            kmer: np.asarray(pos, dtype=np.int64) for kmer, pos in buckets.items()
        }

    def positions(self, kmer: str) -> np.ndarray:
        """Sorted 1-based start positions of ``kmer`` in the text."""
        return self._buckets.get(kmer, np.empty(0, dtype=np.int64))

    def __contains__(self, kmer: str) -> bool:
        return kmer in self._buckets

    def __len__(self) -> int:
        return len(self._buckets)
