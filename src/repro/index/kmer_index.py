"""Hash index of the text's k-mers — the seeding substrate of the BLAST baseline.

BLAST decomposes the *query* into words and looks them up against the
database; we invert the roles at build time (index the text once, scan query
words at search time), which is the standard in-memory arrangement.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

#: BLAST's default seed word length (BLASTN's classic 11); stores persist
#: their aux postings at this k unless told otherwise, so default searches
#: never rebuild.
DEFAULT_WORD_SIZE = 11


class KmerIndex:
    """Map every k-mer of a text to the numpy array of its 1-based starts."""

    def __init__(self, text: str, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.text = text
        self.k = k
        buckets: dict[str, list[int]] = defaultdict(list)
        for start0 in range(len(text) - k + 1):
            buckets[text[start0 : start0 + k]].append(start0 + 1)
        self._buckets = {
            kmer: np.asarray(pos, dtype=np.int64) for kmer, pos in buckets.items()
        }

    def positions(self, kmer: str) -> np.ndarray:
        """Sorted 1-based start positions of ``kmer`` in the text."""
        return self._buckets.get(kmer, np.empty(0, dtype=np.int64))

    def __contains__(self, kmer: str) -> bool:
        return kmer in self._buckets

    def __len__(self) -> int:
        return len(self._buckets)

    # -------------------------------------------------------- serialization
    def components(self) -> dict[str, np.ndarray]:
        """The postings as three flat arrays (the store's aux section).

        ``kmer_words`` is a ``(K, k)`` uint8 matrix of the distinct k-mers
        in sorted order, ``kmer_offsets`` a ``(K + 1,)`` int64 prefix table,
        and ``kmer_positions`` the concatenated posting lists — the classic
        CSR layout, so :meth:`from_components` can rebuild every bucket as a
        zero-copy slice of the (possibly memory-mapped) positions array.
        """
        kmers = sorted(self._buckets)
        k = self.k
        words = np.frombuffer(
            "".join(kmers).encode("ascii"), dtype=np.uint8
        ).reshape(len(kmers), k) if kmers else np.zeros((0, k), dtype=np.uint8)
        offsets = np.zeros(len(kmers) + 1, dtype=np.int64)
        for row, kmer in enumerate(kmers):
            offsets[row + 1] = offsets[row] + len(self._buckets[kmer])
        positions = (
            np.concatenate([self._buckets[kmer] for kmer in kmers])
            if kmers
            else np.empty(0, dtype=np.int64)
        ).astype(np.int64, copy=False)
        return {
            "kmer_words": words,
            "kmer_offsets": offsets,
            "kmer_positions": positions,
        }

    @classmethod
    def from_components(
        cls,
        text: str,
        k: int,
        words: np.ndarray,
        offsets: np.ndarray,
        positions: np.ndarray,
    ) -> "KmerIndex":
        """Rebuild an index from :meth:`components` arrays without rescanning.

        Posting arrays are *views* into ``positions`` (no copies), so a
        store-backed index shares the mmap'd bytes on disk.
        """
        index = cls.__new__(cls)
        index.text = text
        index.k = k
        blob = np.ascontiguousarray(words).tobytes().decode("ascii")
        offs = np.asarray(offsets).tolist()
        buckets: dict[str, np.ndarray] = {}
        for row in range(len(offs) - 1):
            buckets[blob[row * k : (row + 1) * k]] = positions[
                offs[row] : offs[row + 1]
            ]
        index._buckets = buckets
        return index
