"""Suffix-trie emulation over the reversed text (Sec. 5).

The ALAE/BWT-SW traversal needs to grow a text substring ``X`` one character
to the *right* (``X -> Xc``) while tracking all its occurrences.  Following
the paper, we build the FM-index of the reversed text ``T^-1``: appending
``c`` to ``X`` prepends ``c`` to ``X^-1``, which is exactly one backward-search
step.  The three trie operations of Sec. 5 map to:

1. *exact q-gram membership* -> :meth:`range_of` (O(q) backward steps);
2. *occurrence end positions* -> :meth:`end_positions` (an occurrence of
   ``X^-1`` starting at position ``p`` of ``T^-1`` is an occurrence of ``X``
   **ending** at position ``n - 1 - p`` of ``T``, 0-based);
3. *subtree traversal* -> :meth:`extend` per alphabet character, non-empty
   ranges being the existing trie edges.
"""

from __future__ import annotations

import numpy as np

from repro.alphabet import Alphabet
from repro.errors import IndexError_
from repro.index.fm_index import EMPTY, FMIndex

#: The empty SA range, re-exported for traversal code.
EMPTY_RANGE = EMPTY


class ReversedTextIndex:
    """Compressed-suffix-array view of a text supporting rightward extension."""

    def __init__(
        self,
        text: str,
        alphabet: Alphabet,
        occ_block: int = 128,
        sa_sample: int = 16,
    ) -> None:
        alphabet.validate(text)
        self.alphabet = alphabet
        self.text = text
        self.n = len(text)
        if self.n == 0:
            raise IndexError_("cannot index an empty text")
        # Codes are shifted by +1 so 0 stays free for the sentinel.
        rev_codes = alphabet.encode(text[::-1]).astype(np.int64) + 1
        self._fm = FMIndex(
            rev_codes, alphabet.size, occ_block=occ_block, sa_sample=sa_sample
        )

    # -------------------------------------------------------- serialization
    @classmethod
    def from_fm_index(
        cls, text: str, alphabet: Alphabet, fm: FMIndex
    ) -> "ReversedTextIndex":
        """Wrap a prebuilt reversed-text FM-index (e.g. loaded from a store).

        ``fm`` must index ``text`` *reversed* with codes shifted by +1, as
        built by the regular constructor; the text itself is trusted (it
        came from the same store) and is not re-validated.
        """
        if fm.n != len(text):
            raise IndexError_(
                f"FM-index covers {fm.n} characters, text has {len(text)}"
            )
        index = cls.__new__(cls)
        index.alphabet = alphabet
        index.text = text
        index.n = len(text)
        index._fm = fm
        return index

    def fm_components(self) -> "dict[str, np.ndarray]":
        """Export the underlying FM-index arrays for serialization."""
        return self._fm.components()

    # ------------------------------------------------------------- traversal
    def root(self) -> tuple[int, int]:
        """SA range of the empty path (the conceptual trie root)."""
        return self._fm.full_range()

    def extend(self, rng: tuple[int, int], char: str) -> tuple[int, int]:
        """SA range of ``X + char`` given the range of ``X`` (may be empty)."""
        code = self.alphabet.index(char) + 1
        return self._fm.extend_left(rng, code)

    def extend_code(self, rng: tuple[int, int], code: int) -> tuple[int, int]:
        """Like :meth:`extend` but takes a pre-computed ``alphabet code + 1``.

        The traversal engines call this once per (node, character); skipping
        the per-call character lookup measurably matters there.
        """
        return self._fm.extend_left(rng, code)

    def char_codes(self) -> list[tuple[str, int]]:
        """``(char, code)`` pairs accepted by :meth:`extend_code`."""
        return [(c, i + 1) for i, c in enumerate(self.alphabet.chars)]

    def children(self, rng: tuple[int, int]) -> list[tuple[int, tuple[int, int]]]:
        """All existing trie edges under a node as ``(code, child_range)``.

        The vectorized traversal's replacement for ``sigma`` per-character
        :meth:`extend_code` probes: a size-1 range names its unique child
        directly (``bwt[lo]``), and wider ranges get every child range from
        one pair of Occ-row lookups (:meth:`FMIndex.children_ranges`).
        Codes are ``alphabet code + 1`` in ascending (= alphabetical) order,
        matching the per-character probe order of the scalar traversal.
        """
        lo, hi = rng
        fm = self._fm
        if hi - lo == 1:
            code, child = fm.single_child(lo)
            return [(code, child)] if code else []
        if hi <= lo:
            return []
        if hi - lo <= 8:
            return fm.children_small(lo, hi)
        lo_all, hi_all = fm.children_ranges(rng)
        lo_list = lo_all.tolist()
        hi_list = hi_all.tolist()
        return [
            (code, (lo_list[code], hi_list[code]))
            for code in range(1, fm.sigma + 1)
            if hi_list[code] > lo_list[code]
        ]

    def text_codes(self) -> np.ndarray:
        """The text as shifted code points (``alphabet code + 1``, uint8).

        Built lazily and cached: the unary-chain diagonal runs of the
        vectorized engine read upcoming text characters straight from this
        array instead of stepping the FM-index once per character.
        """
        codes = getattr(self, "_text_codes", None)
        if codes is None:
            codes = self.alphabet.encode(self.text) + np.uint8(1)
            self._text_codes = codes
        return codes

    def text_code_list(self) -> list[int]:
        """:meth:`text_codes` as a cached plain list (O(1) scalar reads).

        The text-mode chain walk reads one character per row; plain list
        indexing beats numpy scalar extraction by an order of magnitude
        there.
        """
        codes = getattr(self, "_text_code_list", None)
        if codes is None:
            codes = self.text_codes().tolist()
            self._text_code_list = codes
        return codes

    def query_codes(self, query: str) -> np.ndarray:
        """``query`` as shifted code points (``alphabet code + 1``).

        Matches the code space of :meth:`children` /:meth:`extend_code`, so
        the engine's per-fork character comparisons become integer array
        compares against a child's code.
        """
        return self.alphabet.encode(query).astype(np.int64) + 1

    def range_of(self, substring: str) -> tuple[int, int]:
        """SA range of ``substring`` as a path from the trie root."""
        rng = self.root()
        for char in substring:
            rng = self.extend(rng, char)
            if rng == EMPTY_RANGE:
                return EMPTY_RANGE
        return rng

    def contains(self, substring: str) -> bool:
        """Whether ``substring`` occurs in the text."""
        return self.range_of(substring) != EMPTY_RANGE

    def occurrence_count(self, rng: tuple[int, int]) -> int:
        """Number of occurrences represented by a (path) SA range."""
        return max(0, rng[1] - rng[0])

    # --------------------------------------------------------------- locate
    def end_positions(self, rng: tuple[int, int]) -> list[int]:
        """1-based *end* positions in ``T`` of every occurrence in ``rng``.

        End positions are what the accumulator ``A(i, j)`` is keyed on: a path
        of depth ``d`` ending at 1-based position ``e`` starts at
        ``e - d + 1``.
        """
        ends = []
        for p in self._fm.locate(rng):
            if p >= self.n:  # the sentinel row; not a real occurrence
                continue
            ends.append(self.n - p)  # 0-based n-1-p, converted to 1-based
        return ends

    def end_positions_array(self, rng: tuple[int, int]) -> np.ndarray:
        """:meth:`end_positions` as an ndarray via the batched locate."""
        pos = self._fm.locate_array(rng)
        return self.n - pos[pos < self.n]

    # ----------------------------------------------------------------- size
    def size_bytes(self) -> dict[str, int]:
        """Modelled size of the underlying FM-index (Fig. 11)."""
        return self._fm.size_bytes()
