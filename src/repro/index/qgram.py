"""Inverted q-gram lists of the query pattern (Sec. 3.1.3).

ALAE decomposes the query ``P`` into overlapping q-grams and records, for each
distinct gram, the sorted list of its 1-based start positions.  Fork areas of
a matrix ``M_X`` begin exactly at the positions of the gram ``X[1..q]``.
Building the index is one O(m) pass, as the paper notes.
"""

from __future__ import annotations

from collections import defaultdict


class QGramIndex:
    """Inverted lists of the q-grams of a query string."""

    def __init__(self, query: str, q: int) -> None:
        if q < 1:
            raise ValueError(f"q must be >= 1, got {q}")
        self.query = query
        self.q = q
        lists: dict[str, list[int]] = defaultdict(list)
        for start0 in range(len(query) - q + 1):
            lists[query[start0 : start0 + q]].append(start0 + 1)
        self._lists = dict(lists)

    def positions(self, gram: str) -> list[int]:
        """Sorted 1-based start positions of ``gram`` in the query."""
        return self._lists.get(gram, [])

    def grams(self) -> list[str]:
        """All distinct q-grams, in first-occurrence order of the dict."""
        return list(self._lists)

    def __contains__(self, gram: str) -> bool:
        return gram in self._lists

    def __len__(self) -> int:
        return len(self._lists)
