"""Suffix array construction (Manber-Myers prefix doubling, numpy).

The suffix array ``SA[0, n]`` of ``T'ated = T + '$'`` stores the starting
position of the i-th lexicographically smallest suffix (Sec. 2.3).  The
sentinel is represented implicitly: callers pass the *code array* of the text
(values ``>= 1``) and the construction appends a virtual smallest character 0.

``suffix_array`` runs in O(n log n) time using numpy lexsorts and is the
production path; ``suffix_array_naive`` is an O(n^2 log n) oracle used by the
test suite.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IndexError_


def suffix_array_naive(codes: np.ndarray) -> np.ndarray:
    """Sort suffixes of ``codes + [0]`` by brute force (test oracle)."""
    seq = list(np.asarray(codes, dtype=np.int64)) + [0]
    order = sorted(range(len(seq)), key=lambda i: seq[i:])
    return np.asarray(order, dtype=np.int64)


def suffix_array(codes: np.ndarray) -> np.ndarray:
    """Prefix-doubling suffix array of ``codes`` with an appended sentinel 0.

    Parameters
    ----------
    codes:
        1-d integer array of character codes, all ``>= 1`` (0 is reserved for
        the sentinel).

    Returns
    -------
    numpy.ndarray
        ``SA`` of length ``len(codes) + 1``; ``SA[0]`` is always the sentinel
        position ``len(codes)``.
    """
    codes = np.asarray(codes, dtype=np.int64)
    if codes.ndim != 1:
        raise IndexError_("codes must be a 1-d array")
    if codes.size and codes.min() < 1:
        raise IndexError_("character codes must be >= 1 (0 is the sentinel)")
    n = codes.size + 1
    seq = np.zeros(n, dtype=np.int64)
    seq[: n - 1] = codes

    # rank[i] = rank of suffix i by its first k characters.
    order = np.argsort(seq, kind="stable")
    rank = np.zeros(n, dtype=np.int64)
    rank[order] = np.cumsum(
        np.concatenate(([0], (seq[order[1:]] != seq[order[:-1]]).astype(np.int64)))
    )
    k = 1
    while k < n:
        # Second key: rank of suffix i+k (suffixes past the end rank lowest).
        second = np.full(n, -1, dtype=np.int64)
        second[: n - k] = rank[k:]
        order = np.lexsort((second, rank))
        pair = np.stack((rank[order], second[order]), axis=1)
        changed = np.any(pair[1:] != pair[:-1], axis=1).astype(np.int64)
        new_rank = np.zeros(n, dtype=np.int64)
        new_rank[order] = np.cumsum(np.concatenate(([0], changed)))
        rank = new_rank
        if rank[order[-1]] == n - 1:
            break
        k *= 2
    return order.astype(np.int64)
