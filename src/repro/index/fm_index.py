"""FM-index: the compressed suffix array of Sec. 2.3 / Sec. 5.

Combines the BWT with

* the ``C`` array (``C[c]`` = number of characters smaller than ``c``),
* checkpointed occurrence counts ``Occ(c, i)`` (one checkpoint row every
  ``occ_block`` positions; the remainder is counted on demand inside the
  block), and
* a sampled suffix array for ``locate`` (every ``sa_sample``-th text position
  is kept; other positions walk the LF mapping until a sample is hit).

``backward_search`` implements Ferragina-Manzini backward search: each step
prepends one character to the pattern in O(1) rank queries, so the SA range of
a length-q pattern is found in O(q) steps exactly as the paper requires.

The reported :meth:`size_bytes` models the space the paper's implementation
would use (2-bit packed BWT for DNA, ceil(log2(sigma+1))-bit otherwise) so the
Fig. 11 index-size experiment reproduces the paper's accounting rather than
CPython object overheads.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import IndexError_
from repro.index.bwt import bwt_transform

#: An empty SA range.
EMPTY = (0, 0)


class FMIndex:
    """FM-index over an integer code array (codes ``>= 1``; 0 = sentinel).

    Parameters
    ----------
    codes:
        The text as a 1-d array of character codes in ``[1, sigma]``.
    sigma:
        Alphabet size (codes run from 1 to ``sigma`` inclusive).
    occ_block:
        Checkpoint spacing for the Occ structure.
    sa_sample:
        Suffix-array sampling rate for ``locate``.
    """

    def __init__(
        self,
        codes: np.ndarray,
        sigma: int,
        occ_block: int = 128,
        sa_sample: int = 16,
    ) -> None:
        codes = np.asarray(codes, dtype=np.int64)
        if codes.size and (codes.min() < 1 or codes.max() > sigma):
            raise IndexError_("codes must lie in [1, sigma]")
        if occ_block < 1:
            raise IndexError_(f"occ_block must be >= 1, got {occ_block}")
        if sa_sample < 1:
            raise IndexError_(f"sa_sample must be >= 1, got {sa_sample}")
        self.sigma = int(sigma)
        self.n = int(codes.size)
        self._occ_block = int(occ_block)
        self._sa_sample = int(sa_sample)

        bwt, sa = bwt_transform(codes)
        if sigma > 255:
            raise IndexError_("alphabets larger than 255 are not supported")
        # The BWT is kept as a bytes object: rank queries then reduce to the
        # C-speed bytes.count, which dominates backward-search performance.
        self._bwt = bytes(bwt.astype(np.uint8))
        size = self.n + 1

        # C array: C[c] = #characters (including sentinel) strictly smaller.
        counts = np.bincount(bwt, minlength=sigma + 1)
        self._C = np.concatenate(([0], np.cumsum(counts)))[: sigma + 2]
        self._C_list: list[int] = self._C.tolist()

        # Occ checkpoints: occ_ckpt[b, c] = #occurrences of c in bwt[0 : b*B].
        nblocks = size // self._occ_block + 1
        ckpt = np.zeros((nblocks, sigma + 1), dtype=np.int64)
        for b in range(1, nblocks):
            lo, hi = (b - 1) * self._occ_block, b * self._occ_block
            ckpt[b] = ckpt[b - 1] + np.bincount(bwt[lo:hi], minlength=sigma + 1)
        # Plain nested lists beat numpy scalar indexing in the hot path.
        self._occ_ckpt = ckpt
        self._occ_rows: list[list[int]] = ckpt.tolist()

        # Sampled SA: keep entries whose *text position* is a multiple of the
        # sample rate; store row -> position in a dict for O(1) hits.
        mask = sa % self._sa_sample == 0
        self._sa_samples = dict(
            zip(np.nonzero(mask)[0].tolist(), sa[mask].tolist())
        )

    # -------------------------------------------------------- serialization
    @classmethod
    def from_components(
        cls,
        bwt: np.ndarray,
        c_array: np.ndarray,
        occ_ckpt: np.ndarray,
        sa_rows: np.ndarray,
        sa_positions: np.ndarray,
        *,
        sigma: int,
        occ_block: int,
        sa_sample: int,
    ) -> "FMIndex":
        """Rebuild an index from previously exported components.

        The expensive suffix-array construction is skipped entirely; the
        remaining cost is materialising the hot-path representations (the
        BWT byte string, checkpoint row lists and the sampled-SA dict) from
        the given arrays, which may be read-only ``numpy.memmap`` views —
        loading them is a sequential page-in, not a rebuild.
        """
        fm = cls.__new__(cls)
        fm.sigma = int(sigma)
        fm.n = int(len(bwt)) - 1
        fm._occ_block = int(occ_block)
        fm._sa_sample = int(sa_sample)
        fm._bwt = np.asarray(bwt, dtype=np.uint8).tobytes()
        fm._C = np.asarray(c_array, dtype=np.int64)
        occ_ckpt = np.asarray(occ_ckpt)
        expected_rows = (fm.n + 1) // fm._occ_block + 1
        if fm._C.size != sigma + 2:
            raise IndexError_(
                f"C array has {fm._C.size} entries, expected {sigma + 2}"
            )
        if occ_ckpt.shape != (expected_rows, sigma + 1):
            raise IndexError_(
                f"Occ checkpoints shaped {occ_ckpt.shape}, expected "
                f"{(expected_rows, sigma + 1)}"
            )
        if len(sa_rows) != len(sa_positions):
            raise IndexError_("sampled-SA rows and positions differ in length")
        fm._C_list = fm._C.tolist()
        fm._occ_ckpt = occ_ckpt
        fm._occ_rows = occ_ckpt.tolist()
        fm._sa_samples = dict(
            zip(
                np.asarray(sa_rows, dtype=np.int64).tolist(),
                np.asarray(sa_positions, dtype=np.int64).tolist(),
            )
        )
        return fm

    def components(self) -> "dict[str, np.ndarray]":
        """Export every array a store needs to rebuild this index.

        Keys match :meth:`from_components` parameters; the sampled SA is
        split into parallel ``sa_rows`` / ``sa_positions`` arrays in
        ascending row order so the export is deterministic.
        """
        rows = sorted(self._sa_samples)
        return {
            "bwt": np.frombuffer(self._bwt, dtype=np.uint8),
            "c_array": np.asarray(self._C, dtype=np.int64),
            "occ_ckpt": np.asarray(self._occ_ckpt, dtype=np.int64),
            "sa_rows": np.asarray(rows, dtype=np.int64),
            "sa_positions": np.asarray(
                [self._sa_samples[r] for r in rows], dtype=np.int64
            ),
        }

    # ------------------------------------------------------------------ rank
    def occ(self, c: int, i: int) -> int:
        """Number of occurrences of code ``c`` in ``bwt[0:i]``."""
        block = self._occ_block
        b = i // block
        base = self._occ_rows[b][c]
        lo = b * block
        if lo == i:
            return base
        return base + self._bwt.count(c, lo, i)

    def lf(self, i: int) -> int:
        """LF mapping: row of the suffix starting one position earlier."""
        c = self._bwt[i]
        return self._C_list[c] + self.occ(c, i)

    # --------------------------------------------------------------- search
    def extend_left(self, rng: tuple[int, int], c: int) -> tuple[int, int]:
        """One backward-search step: SA range of ``c + pattern``.

        ``rng`` is the half-open SA range ``[lo, hi)`` of ``pattern``.
        Returns the (possibly empty) range of the extended pattern.
        """
        lo, hi = rng
        if lo >= hi:
            return EMPTY
        c_base = self._C_list[c]
        new_lo = c_base + self.occ(c, lo)
        new_hi = c_base + self.occ(c, hi)
        if new_lo >= new_hi:
            return EMPTY
        return (new_lo, new_hi)

    def full_range(self) -> tuple[int, int]:
        """SA range of the empty pattern (every suffix)."""
        return (0, self.n + 1)

    def backward_search(self, pattern: np.ndarray) -> tuple[int, int]:
        """SA range of ``pattern`` (code array), processed right-to-left."""
        rng = self.full_range()
        for c in reversed(np.asarray(pattern, dtype=np.int64)):
            rng = self.extend_left(rng, int(c))
            if rng == EMPTY:
                return EMPTY
        return rng

    def count(self, pattern: np.ndarray) -> int:
        """Number of occurrences of ``pattern`` in the text."""
        lo, hi = self.backward_search(pattern)
        return hi - lo

    # --------------------------------------------------------------- locate
    def locate_row(self, row: int) -> int:
        """Text position of the suffix in SA row ``row`` (sampled-SA walk)."""
        steps = 0
        r = row
        while r not in self._sa_samples:
            r = self.lf(r)
            steps += 1
        return (self._sa_samples[r] + steps) % (self.n + 1)

    def locate(self, rng: tuple[int, int]) -> list[int]:
        """Text positions of every suffix in the SA range ``[lo, hi)``."""
        lo, hi = rng
        return [self.locate_row(r) for r in range(lo, hi)]

    # ----------------------------------------------------------------- size
    def size_bytes(self) -> dict[str, int]:
        """Modelled index size breakdown (paper-style accounting, Fig. 11).

        The ``actual`` sub-dict reports what the components really occupy
        when serialized by ``repro.store`` (1 byte/BWT char, 64-bit
        checkpoint counters, 64+64-bit sampled-SA pairs), so benchmarks can
        print the paper's model and the on-disk truth side by side.
        """
        bits_per_char = max(1, math.ceil(math.log2(self.sigma + 1)))
        bwt_bytes = math.ceil((self.n + 1) * bits_per_char / 8)
        occ_bytes = self._occ_ckpt.size * 4  # 32-bit checkpoint counters
        sa_bytes = len(self._sa_samples) * 8  # row->pos pairs, 32+32 bits
        c_bytes = self._C.size * 4
        actual = {
            "bwt": len(self._bwt),
            "occ_checkpoints": int(self._occ_ckpt.size) * 8,
            "sa_samples": len(self._sa_samples) * 16,
            "c_array": int(self._C.size) * 8,
        }
        actual["total"] = sum(actual.values())
        return {
            "bwt": bwt_bytes,
            "occ_checkpoints": occ_bytes,
            "sa_samples": sa_bytes,
            "c_array": c_bytes,
            "total": bwt_bytes + occ_bytes + sa_bytes + c_bytes,
            "actual": actual,
        }
