"""FM-index: the compressed suffix array of Sec. 2.3 / Sec. 5.

Combines the BWT with

* the ``C`` array (``C[c]`` = number of characters smaller than ``c``),
* checkpointed occurrence counts ``Occ(c, i)`` (one checkpoint row every
  ``occ_block`` positions; the remainder is counted on demand inside the
  block), and
* a sampled suffix array for ``locate`` (every ``sa_sample``-th text position
  is kept; other positions walk the LF mapping until a sample is hit).

``backward_search`` implements Ferragina-Manzini backward search: each step
prepends one character to the pattern in O(1) rank queries, so the SA range of
a length-q pattern is found in O(q) steps exactly as the paper requires.

The reported :meth:`size_bytes` models the space the paper's implementation
would use (2-bit packed BWT for DNA, ceil(log2(sigma+1))-bit otherwise) so the
Fig. 11 index-size experiment reproduces the paper's accounting rather than
CPython object overheads.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import IndexError_
from repro.index.bwt import bwt_transform

#: An empty SA range.
EMPTY = (0, 0)


class FMIndex:
    """FM-index over an integer code array (codes ``>= 1``; 0 = sentinel).

    Parameters
    ----------
    codes:
        The text as a 1-d array of character codes in ``[1, sigma]``.
    sigma:
        Alphabet size (codes run from 1 to ``sigma`` inclusive).
    occ_block:
        Checkpoint spacing for the Occ structure.
    sa_sample:
        Suffix-array sampling rate for ``locate``.
    """

    def __init__(
        self,
        codes: np.ndarray,
        sigma: int,
        occ_block: int = 128,
        sa_sample: int = 16,
    ) -> None:
        codes = np.asarray(codes, dtype=np.int64)
        if codes.size and (codes.min() < 1 or codes.max() > sigma):
            raise IndexError_("codes must lie in [1, sigma]")
        if occ_block < 1:
            raise IndexError_(f"occ_block must be >= 1, got {occ_block}")
        if sa_sample < 1:
            raise IndexError_(f"sa_sample must be >= 1, got {sa_sample}")
        self.sigma = int(sigma)
        self.n = int(codes.size)
        self._occ_block = int(occ_block)
        self._sa_sample = int(sa_sample)

        bwt, sa = bwt_transform(codes)
        if sigma > 255:
            raise IndexError_("alphabets larger than 255 are not supported")
        # The BWT is kept as a bytes object: rank queries then reduce to the
        # C-speed bytes.count, which dominates backward-search performance.
        # The uint8 array view over the same buffer feeds the vectorized
        # paths (children_ranges, batched locate) without a copy.
        self._bwt = bytes(bwt.astype(np.uint8))
        self._bwt_arr = np.frombuffer(self._bwt, dtype=np.uint8)
        self._sa_pos: np.ndarray | None = None
        size = self.n + 1

        # C array: C[c] = #characters (including sentinel) strictly smaller.
        counts = np.bincount(bwt, minlength=sigma + 1)
        self._C = np.concatenate(([0], np.cumsum(counts)))[: sigma + 2]
        self._C_list: list[int] = self._C.tolist()

        # Occ checkpoints: occ_ckpt[b, c] = #occurrences of c in bwt[0 : b*B].
        nblocks = size // self._occ_block + 1
        ckpt = np.zeros((nblocks, sigma + 1), dtype=np.int64)
        for b in range(1, nblocks):
            lo, hi = (b - 1) * self._occ_block, b * self._occ_block
            ckpt[b] = ckpt[b - 1] + np.bincount(bwt[lo:hi], minlength=sigma + 1)
        # Plain nested lists beat numpy scalar indexing in the hot path.
        self._occ_ckpt = ckpt
        self._occ_rows: list[list[int]] = ckpt.tolist()

        # Sampled SA: keep entries whose *text position* is a multiple of the
        # sample rate; store row -> position in a dict for O(1) hits.
        mask = sa % self._sa_sample == 0
        self._sa_samples = dict(
            zip(np.nonzero(mask)[0].tolist(), sa[mask].tolist())
        )

    # -------------------------------------------------------- serialization
    @classmethod
    def from_components(
        cls,
        bwt: np.ndarray,
        c_array: np.ndarray,
        occ_ckpt: np.ndarray,
        sa_rows: np.ndarray,
        sa_positions: np.ndarray,
        *,
        sigma: int,
        occ_block: int,
        sa_sample: int,
    ) -> "FMIndex":
        """Rebuild an index from previously exported components.

        The expensive suffix-array construction is skipped entirely; the
        remaining cost is materialising the hot-path representations (the
        BWT byte string, checkpoint row lists and the sampled-SA dict) from
        the given arrays, which may be read-only ``numpy.memmap`` views —
        loading them is a sequential page-in, not a rebuild.
        """
        fm = cls.__new__(cls)
        fm.sigma = int(sigma)
        fm.n = int(len(bwt)) - 1
        fm._occ_block = int(occ_block)
        fm._sa_sample = int(sa_sample)
        fm._bwt = np.asarray(bwt, dtype=np.uint8).tobytes()
        fm._bwt_arr = np.frombuffer(fm._bwt, dtype=np.uint8)
        fm._sa_pos = None
        fm._C = np.asarray(c_array, dtype=np.int64)
        occ_ckpt = np.asarray(occ_ckpt)
        expected_rows = (fm.n + 1) // fm._occ_block + 1
        if fm._C.size != sigma + 2:
            raise IndexError_(
                f"C array has {fm._C.size} entries, expected {sigma + 2}"
            )
        if occ_ckpt.shape != (expected_rows, sigma + 1):
            raise IndexError_(
                f"Occ checkpoints shaped {occ_ckpt.shape}, expected "
                f"{(expected_rows, sigma + 1)}"
            )
        if len(sa_rows) != len(sa_positions):
            raise IndexError_("sampled-SA rows and positions differ in length")
        fm._C_list = fm._C.tolist()
        fm._occ_ckpt = occ_ckpt
        fm._occ_rows = occ_ckpt.tolist()
        fm._sa_samples = dict(
            zip(
                np.asarray(sa_rows, dtype=np.int64).tolist(),
                np.asarray(sa_positions, dtype=np.int64).tolist(),
            )
        )
        return fm

    def components(self) -> "dict[str, np.ndarray]":
        """Export every array a store needs to rebuild this index.

        Keys match :meth:`from_components` parameters; the sampled SA is
        split into parallel ``sa_rows`` / ``sa_positions`` arrays in
        ascending row order so the export is deterministic.
        """
        rows = sorted(self._sa_samples)
        return {
            "bwt": np.frombuffer(self._bwt, dtype=np.uint8),
            "c_array": np.asarray(self._C, dtype=np.int64),
            "occ_ckpt": np.asarray(self._occ_ckpt, dtype=np.int64),
            "sa_rows": np.asarray(rows, dtype=np.int64),
            "sa_positions": np.asarray(
                [self._sa_samples[r] for r in rows], dtype=np.int64
            ),
        }

    # ------------------------------------------------------------------ rank
    def occ(self, c: int, i: int) -> int:
        """Number of occurrences of code ``c`` in ``bwt[0:i]``."""
        block = self._occ_block
        b = i // block
        base = self._occ_rows[b][c]
        lo = b * block
        if lo == i:
            return base
        return base + self._bwt.count(c, lo, i)

    def lf(self, i: int) -> int:
        """LF mapping: row of the suffix starting one position earlier."""
        c = self._bwt[i]
        return self._C_list[c] + self.occ(c, i)

    # --------------------------------------------------------------- search
    def extend_left(self, rng: tuple[int, int], c: int) -> tuple[int, int]:
        """One backward-search step: SA range of ``c + pattern``.

        ``rng`` is the half-open SA range ``[lo, hi)`` of ``pattern``.
        Returns the (possibly empty) range of the extended pattern.
        """
        lo, hi = rng
        if lo >= hi:
            return EMPTY
        c_base = self._C_list[c]
        new_lo = c_base + self.occ(c, lo)
        new_hi = c_base + self.occ(c, hi)
        if new_lo >= new_hi:
            return EMPTY
        return (new_lo, new_hi)

    def occ_row(self, i: int) -> np.ndarray:
        """``Occ(c, i)`` for every code ``c`` in ``[0, sigma]`` at once.

        One checkpoint-row fetch plus a single ``bincount`` over the block
        remainder replaces ``sigma + 1`` scalar :meth:`occ` calls.
        """
        block = self._occ_block
        b = i // block
        row = self._occ_ckpt[b]
        lo = b * block
        if lo == i:
            return row
        return row + np.bincount(self._bwt_arr[lo:i], minlength=self.sigma + 1)

    def children_ranges(
        self, rng: tuple[int, int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """SA ranges of ``c + pattern`` for every code ``c`` at once.

        Returns ``(lo_all, hi_all)`` arrays indexed by code: the range of
        code ``c``'s extension is ``(lo_all[c], hi_all[c])`` (empty when
        ``hi <= lo``).  Computed from one pair of Occ-row lookups instead of
        ``sigma`` :meth:`extend_left` calls (two rank queries each), which
        is what the suffix-trie traversal pays per visited node.  Index 0 is
        the sentinel's pseudo-extension and is never a real trie edge.
        """
        lo, hi = rng
        c_lead = self._C[: self.sigma + 1]
        lo_all = c_lead + self.occ_row(lo)
        hi_all = c_lead + self.occ_row(hi)
        return lo_all, hi_all

    def children_small(
        self, lo: int, hi: int
    ) -> list[tuple[int, tuple[int, int]]]:
        """Children of a narrow range by scanning its BWT slice directly.

        The distinct codes in ``bwt[lo:hi]`` are exactly the left-extensions
        of the range's pattern, and each child's width is that code's count
        in the slice — so a narrow node needs one rank query per *present*
        child (typically 1-2 deep in the trie) instead of a full Occ-row
        pair.  Caller guarantees ``hi - lo`` is small; results are identical
        to :meth:`children_ranges`.
        """
        seg = self._bwt[lo:hi]
        c_list = self._C_list
        out = []
        for c in sorted(set(seg)):
            if c == 0:
                continue
            new_lo = c_list[c] + self.occ(c, lo)
            out.append((c, (new_lo, new_lo + seg.count(c))))
        return out

    def single_child(self, lo: int) -> tuple[int, tuple[int, int]]:
        """The unique extension of a size-1 SA range ``[lo, lo + 1)``.

        A pattern with exactly one occurrence has at most one left-extension
        and its code is simply ``bwt[lo]`` — no rank query is needed to
        *discover* it, and one suffices to place it.  Returns ``(code,
        range)``; code 0 means the occurrence starts the text (sentinel), so
        there is no extension.
        """
        c = self._bwt[lo]
        if c == 0:
            return 0, EMPTY
        new_lo = self._C_list[c] + self.occ(c, lo)
        return c, (new_lo, new_lo + 1)

    def full_range(self) -> tuple[int, int]:
        """SA range of the empty pattern (every suffix)."""
        return (0, self.n + 1)

    def backward_search(self, pattern: np.ndarray) -> tuple[int, int]:
        """SA range of ``pattern`` (code array), processed right-to-left."""
        rng = self.full_range()
        for c in reversed(np.asarray(pattern, dtype=np.int64)):
            rng = self.extend_left(rng, int(c))
            if rng == EMPTY:
                return EMPTY
        return rng

    def count(self, pattern: np.ndarray) -> int:
        """Number of occurrences of ``pattern`` in the text."""
        lo, hi = self.backward_search(pattern)
        return hi - lo

    # --------------------------------------------------------------- locate
    def locate_row(self, row: int) -> int:
        """Text position of the suffix in SA row ``row`` (sampled-SA walk)."""
        steps = 0
        r = row
        while r not in self._sa_samples:
            r = self.lf(r)
            steps += 1
        return (self._sa_samples[r] + steps) % (self.n + 1)

    #: Below this range width the per-call numpy overhead of the batched
    #: walk exceeds the scalar walk's cost; both produce identical output.
    _BATCH_LOCATE_MIN = 6

    def _sa_pos_array(self) -> np.ndarray:
        """Sampled SA as a dense row-indexed array (-1 = unsampled).

        Built lazily on first batched locate: the dict stays the scalar hot
        path's O(1) structure, the array is what lets one iteration resolve
        every sampled row of a batch with a single gather.
        """
        arr = self._sa_pos
        if arr is None:
            arr = np.full(self.n + 2, -1, dtype=np.int64)
            if self._sa_samples:
                rows = np.fromiter(
                    self._sa_samples.keys(), np.int64, len(self._sa_samples)
                )
                arr[rows] = np.fromiter(
                    self._sa_samples.values(), np.int64, len(self._sa_samples)
                )
            self._sa_pos = arr
        return arr

    def locate_array(self, rng: tuple[int, int]) -> np.ndarray:
        """Text positions of every suffix in ``[lo, hi)`` as an ndarray.

        Wide ranges walk the LF mapping for *all* unresolved rows per
        iteration: one gather against the dense sampled-SA array resolves
        the rows that hit a sample, one batched LF step (checkpoint-row
        gather + in-block mask count) advances the rest.  Narrow ranges
        fall back to the scalar :meth:`locate_row` walk, which is cheaper
        below ``_BATCH_LOCATE_MIN`` rows; results are identical.
        """
        lo, hi = rng
        count = hi - lo
        if count <= 0:
            return np.empty(0, dtype=np.int64)
        if count < self._BATCH_LOCATE_MIN or self._occ_block > 4096:
            return np.array(
                [self.locate_row(r) for r in range(lo, hi)], dtype=np.int64
            )
        size = self.n + 1
        sa_pos = self._sa_pos_array()
        block = self._occ_block
        bwt_arr = self._bwt_arr
        ckpt = self._occ_ckpt
        c_arr = self._C
        in_block = np.arange(block, dtype=np.int64)
        rows = np.arange(lo, hi, dtype=np.int64)
        out = np.empty(count, dtype=np.int64)
        pending = np.arange(count)
        steps = 0
        while pending.size:
            r = rows[pending]
            pos = sa_pos[r]
            resolved = pos >= 0
            if resolved.any():
                out[pending[resolved]] = pos[resolved] + steps
                keep = ~resolved
                pending = pending[keep]
                if not pending.size:
                    break
                r = r[keep]
            # Batched LF: rows[p] <- C[c] + Occ(c, row) for c = bwt[row].
            c = bwt_arr[r].astype(np.int64)
            b = r // block
            starts = b * block
            offs = starts[:, None] + in_block[None, :]
            np.minimum(offs, size - 1, out=offs)
            rem = ((bwt_arr[offs] == c[:, None]) & (offs < r[:, None])).sum(
                axis=1
            )
            rows[pending] = c_arr[c] + ckpt[b, c] + rem
            steps += 1
        out %= size
        return out

    def locate(self, rng: tuple[int, int]) -> list[int]:
        """Text positions of every suffix in the SA range ``[lo, hi)``."""
        lo, hi = rng
        if hi - lo < self._BATCH_LOCATE_MIN or self._occ_block > 4096:
            return [self.locate_row(r) for r in range(lo, hi)]
        return self.locate_array(rng).tolist()

    # ----------------------------------------------------------------- size
    def size_bytes(self) -> dict[str, int]:
        """Modelled index size breakdown (paper-style accounting, Fig. 11).

        The ``actual`` sub-dict reports what the components really occupy
        when serialized by ``repro.store`` (1 byte/BWT char, 64-bit
        checkpoint counters, 64+64-bit sampled-SA pairs), so benchmarks can
        print the paper's model and the on-disk truth side by side.
        """
        bits_per_char = max(1, math.ceil(math.log2(self.sigma + 1)))
        bwt_bytes = math.ceil((self.n + 1) * bits_per_char / 8)
        occ_bytes = self._occ_ckpt.size * 4  # 32-bit checkpoint counters
        sa_bytes = len(self._sa_samples) * 8  # row->pos pairs, 32+32 bits
        c_bytes = self._C.size * 4
        actual = {
            "bwt": len(self._bwt),
            "occ_checkpoints": int(self._occ_ckpt.size) * 8,
            "sa_samples": len(self._sa_samples) * 16,
            "c_array": int(self._C.size) * 8,
        }
        actual["total"] = sum(actual.values())
        return {
            "bwt": bwt_bytes,
            "occ_checkpoints": occ_bytes,
            "sa_samples": sa_bytes,
            "c_array": c_bytes,
            "total": bwt_bytes + occ_bytes + sa_bytes + c_bytes,
            "actual": actual,
        }
