"""Text indexes: suffix array, BWT, FM-index, suffix-trie emulation (Sec. 2.3/5)."""

from repro.index.suffix_array import suffix_array, suffix_array_naive
from repro.index.bwt import bwt_from_suffix_array, bwt_transform, bwt_inverse
from repro.index.fm_index import FMIndex
from repro.index.csa import ReversedTextIndex, EMPTY_RANGE
from repro.index.suffix_trie import SuffixTrie
from repro.index.qgram import QGramIndex
from repro.index.kmer_index import KmerIndex

__all__ = [
    "suffix_array",
    "suffix_array_naive",
    "bwt_transform",
    "bwt_from_suffix_array",
    "bwt_inverse",
    "FMIndex",
    "ReversedTextIndex",
    "EMPTY_RANGE",
    "SuffixTrie",
    "QGramIndex",
    "KmerIndex",
]
