"""Explicit suffix trie (Sec. 2.3) for small texts.

Each path from the root represents one distinct substring of ``T``; a node
stores the 1-based *end* positions of every occurrence of its path.  The
BASIC algorithm (Algorithm 1) and several test oracles traverse this structure
directly.  Memory is O(n^2), so it is only suitable for texts up to a few
thousand characters — the production traversal uses
:class:`repro.index.csa.ReversedTextIndex` instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class TrieNode:
    """One suffix-trie node: children by character, occurrence end positions."""

    depth: int
    children: dict[str, "TrieNode"] = field(default_factory=dict)
    ends: list[int] = field(default_factory=list)


class SuffixTrie:
    """Suffix trie of a text (1-based positions throughout)."""

    def __init__(self, text: str, max_depth: int | None = None) -> None:
        self.text = text
        self.n = len(text)
        self.max_depth = max_depth if max_depth is not None else self.n
        self.root = TrieNode(depth=0)
        for start in range(self.n):
            node = self.root
            limit = min(self.n, start + self.max_depth)
            for pos in range(start, limit):
                char = text[pos]
                nxt = node.children.get(char)
                if nxt is None:
                    nxt = TrieNode(depth=node.depth + 1)
                    node.children[char] = nxt
                nxt.ends.append(pos + 1)  # 1-based end of this occurrence
                node = nxt

    def node_of(self, substring: str) -> TrieNode | None:
        """Node reached by ``substring``, or ``None`` if absent."""
        node = self.root
        for char in substring:
            node = node.children.get(char)
            if node is None:
                return None
        return node

    def contains(self, substring: str) -> bool:
        """Whether ``substring`` occurs in the text."""
        return self.node_of(substring) is not None

    def end_positions(self, substring: str) -> list[int]:
        """1-based end positions of every occurrence of ``substring``."""
        node = self.node_of(substring)
        return sorted(node.ends) if node else []

    def iter_paths(self) -> Iterator[tuple[str, TrieNode]]:
        """Yield ``(substring, node)`` for every node in preorder."""
        stack: list[tuple[str, TrieNode]] = [("", self.root)]
        while stack:
            path, node = stack.pop()
            if node is not self.root:
                yield path, node
            for char in sorted(node.children, reverse=True):
                stack.append((path + char, node.children[char]))

    def iter_leaf_paths(self) -> Iterator[str]:
        """Yield every root-to-leaf substring (the suffixes, when untruncated)."""
        for path, node in self.iter_paths():
            if not node.children:
                yield path
