"""Burrows-Wheeler transform (Sec. 2.3).

BWT appends a sentinel ``$`` (code 0, smaller than any character) to the text
and emits the character preceding each suffix in suffix-array order.  We work
on integer code arrays throughout; ``bwt_transform``/``bwt_inverse`` are the
reference implementations validated against each other in the tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IndexError_
from repro.index.suffix_array import suffix_array


def bwt_from_suffix_array(codes: np.ndarray, sa: np.ndarray) -> np.ndarray:
    """BWT of ``codes + [0]`` given its suffix array.

    ``bwt[i] = seq[SA[i] - 1]`` (wrapping to the sentinel position).
    """
    codes = np.asarray(codes, dtype=np.int64)
    n = codes.size + 1
    if sa.size != n:
        raise IndexError_(f"suffix array size {sa.size} != text size {n}")
    seq = np.zeros(n, dtype=np.int64)
    seq[: n - 1] = codes
    prev = np.where(sa == 0, n - 1, sa - 1)
    return seq[prev]


def bwt_transform(codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(bwt, sa)`` for ``codes`` (sentinel appended internally)."""
    sa = suffix_array(codes)
    return bwt_from_suffix_array(codes, sa), sa


def bwt_inverse(bwt: np.ndarray) -> np.ndarray:
    """Invert a BWT produced by :func:`bwt_transform` (reversibility check).

    Returns the original code array (without the sentinel).
    """
    bwt = np.asarray(bwt, dtype=np.int64)
    n = bwt.size
    if n == 0:
        return bwt
    # LF mapping: stable position of bwt[i] within the sorted first column.
    order = np.argsort(bwt, kind="stable")
    lf = np.empty(n, dtype=np.int64)
    lf[order] = np.arange(n)
    out = np.empty(n - 1, dtype=np.int64)
    # Row 0 holds the sentinel suffix; repeatedly prepend its BWT character.
    i = 0
    for k in range(n - 2, -1, -1):
        out[k] = bwt[i]
        i = lf[i]
    return out
