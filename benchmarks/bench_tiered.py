"""Tiered-mode benchmark: ALAE vs BWT-SW vs BLAST vs the verified tier.

Times every serving mode of the backend registry on the paper's Sec. 7
workload shape (homologous queries over a synthetic text) for both
alphabets the paper evaluates:

* DNA (sigma = 4), default scheme ``<1,-3,-5,-2>``;
* protein (sigma = 20), scheme ``<1,-3,-11,-1>`` (Sec. 7.5).

Four configurations per component:

* ``exact/alae`` — the engine of record (position-ordered, bit-exact);
* ``exact/bwtsw`` — the BWT-SW baseline answering the same question;
* ``fast/blast`` — seed-and-extend candidate generation (score-ranked);
* ``verified`` — fast candidates rescored by windowed exact DPs, with
  measured recall against the exact answer.

Every verified run is also *checked*: its hits must be a subset of the
exact engine's hits with bit-equal scores and start attributions, and
BWT-SW must agree with ALAE cell-for-cell — a speed number obtained by
diverging from the exact answer is a hard failure, not a win.

The JSON report seeds the repo's tiered baseline (``BENCH_tiered.json``)::

    PYTHONPATH=src python benchmarks/bench_tiered.py --out BENCH_tiered.json

CI regression gate (machine-independent: compares measured *recall* and
exact-answer agreement, never absolute times)::

    PYTHONPATH=src python benchmarks/bench_tiered.py --check BENCH_tiered.json
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

from repro.align.bwt_sw import BwtSw
from repro.alphabet import DNA, PROTEIN
from repro.blast.engine import Blast
from repro.core.alae import ALAE
from repro.engine import VerifiedBackend
from repro.obs import maybe_record_bench
from repro.scoring.scheme import DEFAULT_SCHEME, ScoringScheme
from repro.workloads.generator import make_workload

#: Schema version of the emitted JSON.
BENCH_SCHEMA = 1

#: CI fails when a component's measured recall drops more than this far
#: below the committed baseline (recall is workload-deterministic, so any
#: drop means the fast tier lost candidates it used to propose).
RECALL_TOLERANCE = 0.05

COMPONENTS = [
    {
        "name": "dna",
        "alphabet": DNA,
        "scheme": DEFAULT_SCHEME,
        "n": 20_000,
        "query_length": 100,
        "threshold": 30,
        "word_size": 11,
    },
    {
        "name": "protein",
        "alphabet": PROTEIN,
        "scheme": ScoringScheme(1, -3, -11, -1),
        "n": 10_000,
        "query_length": 80,
        "threshold": 15,
        "word_size": 4,
    },
]


def _hit_map(result):
    return {
        (hit.t_end, hit.p_end): (hit.score, hit.t_start)
        for hit in result.hits.hits()
    }


def time_searcher(search, queries, threshold, reps):
    """Median per-query seconds over ``reps`` passes of the whole batch."""
    samples = []
    for _ in range(reps):
        started = time.perf_counter()
        for query in queries:
            search(query, threshold=threshold)
        samples.append((time.perf_counter() - started) / len(queries))
    return statistics.median(samples)


def run_component(spec, query_count, reps):
    workload = make_workload(
        spec["n"], spec["query_length"], query_count=query_count,
        alphabet=spec["alphabet"], cached=False,
    )
    text, queries = workload.text, workload.queries
    threshold = spec["threshold"]
    alae = ALAE(text, spec["alphabet"], spec["scheme"])
    bwtsw = BwtSw(text, spec["alphabet"], spec["scheme"])
    blast = Blast(
        text, alphabet=spec["alphabet"], scheme=spec["scheme"],
        word_size=spec["word_size"],
    )
    verified = VerifiedBackend(blast, alae)

    # Correctness gates + warmup before any timing.
    exact_hits = fast_hits = verified_hits = 0
    for query in queries:
        exact = alae.search(query, threshold=threshold)
        exact_map = _hit_map(exact)
        baseline = bwtsw.search(query, threshold=threshold)
        if _hit_map(baseline) != exact_map:
            raise SystemExit(
                f"[{spec['name']}] BWT-SW diverged from ALAE at H={threshold}"
            )
        ver = verified.search(query, threshold=threshold)
        for cell, payload in _hit_map(ver).items():
            if exact_map.get(cell) != payload:
                raise SystemExit(
                    f"[{spec['name']}] verified hit {cell} is not a "
                    f"bit-equal subset of exact at H={threshold}"
                )
        fast = blast.search(query, threshold=threshold)
        exact_hits += len(exact.hits)
        fast_hits += len(fast.hits)
        verified_hits += len(ver.hits)

    recall = (
        verified_hits / exact_hits if exact_hits else 1.0
    )
    modes = []
    for label, search in (
        ("exact/alae", alae.search),
        ("exact/bwtsw", bwtsw.search),
        ("fast/blast", blast.search),
        ("verified", verified.search),
    ):
        seconds = time_searcher(search, queries, threshold, reps)
        modes.append(
            {"mode": label, "ms_per_query": round(seconds * 1e3, 3)}
        )
    exact_ms = modes[0]["ms_per_query"]
    for row in modes:
        row["speedup_vs_exact"] = round(exact_ms / row["ms_per_query"], 3)
    return {
        "name": spec["name"],
        "sigma": spec["alphabet"].size,
        "scheme": str(spec["scheme"]),
        "n": spec["n"],
        "query_length": spec["query_length"],
        "query_count": query_count,
        "threshold": threshold,
        "word_size": spec["word_size"],
        "exact_hits": exact_hits,
        "fast_hits": fast_hits,
        "verified_hits": verified_hits,
        "recall_vs_exact": round(recall, 4),
        "modes": modes,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--queries", type=int, default=4)
    parser.add_argument("--reps", type=int, default=3)
    parser.add_argument("--out", type=Path, default=None)
    parser.add_argument(
        "--check", type=Path, default=None,
        help="baseline BENCH_tiered.json to gate regressions against",
    )
    args = parser.parse_args()

    components = [
        run_component(spec, args.queries, args.reps) for spec in COMPONENTS
    ]
    report = {
        "schema": BENCH_SCHEMA,
        "bench": "tiered",
        "components": components,
    }

    for comp in components:
        print(
            f"[{comp['name']}] n={comp['n']} H={comp['threshold']} "
            f"w={comp['word_size']} exact_hits={comp['exact_hits']} "
            f"fast_hits={comp['fast_hits']} recall={comp['recall_vs_exact']}"
        )
        for row in comp["modes"]:
            print(
                f"  {row['mode']:<12} {row['ms_per_query']:9.2f} ms/query "
                f"({row['speedup_vs_exact']:.2f}x vs exact)"
            )

    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}")

    bench_id = maybe_record_bench(
        "tiered",
        {
            "components": [
                {
                    "name": c["name"],
                    "recall_vs_exact": c["recall_vs_exact"],
                    "modes": {
                        row["mode"]: row["ms_per_query"] for row in c["modes"]
                    },
                }
                for c in components
            ],
        },
    )
    if bench_id is not None:
        print(f"recorded as bench #{bench_id} (REPRO_CATALOG)")

    if args.check is not None:
        baseline = json.loads(args.check.read_text())
        failed = False
        for base_comp in baseline["components"]:
            current = next(
                (c for c in components if c["name"] == base_comp["name"]),
                None,
            )
            if current is None:
                print(f"REGRESSION CHECK: component {base_comp['name']} missing")
                failed = True
                continue
            floor = base_comp["recall_vs_exact"] - RECALL_TOLERANCE
            status = (
                "ok" if current["recall_vs_exact"] >= floor else "REGRESSED"
            )
            print(
                f"  check [{base_comp['name']}]: recall "
                f"{current['recall_vs_exact']:.4f} vs baseline "
                f"{base_comp['recall_vs_exact']:.4f} (floor {floor:.4f}) "
                f"-> {status}"
            )
            if current["recall_vs_exact"] < floor:
                failed = True
            if current["exact_hits"] != base_comp["exact_hits"]:
                print(
                    f"  check [{base_comp['name']}]: exact_hits "
                    f"{current['exact_hits']} != baseline "
                    f"{base_comp['exact_hits']} -> REGRESSED "
                    f"(exact answer changed)"
                )
                failed = True
        if failed:
            print("tiered benchmark REGRESSED vs committed baseline")
            return 1
        print("regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
