"""Figure 7: filtering ratio and reusing ratio vs query/text length."""

import pytest

from repro.bench.experiments import _outcomes, fig7


@pytest.mark.parametrize("n", (20_000, 40_000))
@pytest.mark.parametrize("m", (200, 1000, 4000))
def test_ratio_configuration(once, n, m):
    out = once(_outcomes, n, m, "alae")
    assert out.accessed > 0


def test_fig7_shape(once):
    """Filtering ratio positive everywhere; reusing ratio grows with m."""
    _title, _headers, rows, _note = once(fig7)
    assert rows
    for n in (20_000, 40_000):
        reuse_by_m = []
        for m in (200, 1000, 4000):
            a = _outcomes(n, m, "alae")
            b = _outcomes(n, m, "bwtsw")
            filtering = (b.calculated - a.calculated) / b.calculated
            assert filtering >= 0.0
            reuse_by_m.append(a.reused / a.accessed if a.accessed else 0.0)
        # Paper Fig. 7(b): longer queries repeat more -> more reuse.
        assert reuse_by_m[-1] >= reuse_by_m[0]
