"""Table 5: entry counts under the two extreme scoring schemes."""

import pytest

from repro.bench.experiments import TABLE5_SCHEMES, _outcomes, table5


@pytest.mark.parametrize("scheme", TABLE5_SCHEMES, ids=str)
def test_scheme_entry_counts(once, scheme):
    out = once(_outcomes, 20_000, 500, "alae", scheme)
    assert out.accessed == out.calculated + out.reused


def test_table5_shape(once):
    """Paper shape: <1,-1,-5,-2> calculates far more than <1,-3,-2,-2>."""
    _title, _headers, rows, _note = once(table5)
    weak_mismatch = _outcomes(20_000, 500, "alae", TABLE5_SCHEMES[0])
    small_gap = _outcomes(20_000, 500, "alae", TABLE5_SCHEMES[1])
    assert weak_mismatch.calculated > small_gap.calculated
    assert rows[0][0] == "<1,-1,-5,-2>"
