"""Figure 11: index sizes (BWT index + dominate index), DNA and protein."""

from repro.alphabet import PROTEIN
from repro.bench.experiments import CACHE, fig11
from repro.scoring.scheme import ScoringScheme


def test_fig11_shape(once):
    """BWT index grows with n; protein dominate index shrinks relatively."""
    _title, _headers, rows, _note = once(fig11)
    dna_rows = [r for r in rows if r[0] == "DNA"]
    protein_rows = [r for r in rows if r[0] == "protein"]
    bwt_sizes = [r[2] for r in dna_rows]
    assert bwt_sizes == sorted(bwt_sizes)  # monotone in n
    # DNA dominate index is negligible next to the BWT index (paper 7.5).
    for row in dna_rows:
        assert row[3] <= max(1, row[2] // 5)
    # Protein: the dominate/BWT ratio falls as the text grows.
    ratios = [row[3] / max(1, row[2]) for row in protein_rows]
    assert ratios[-1] < ratios[0]
    # On-disk sizes (unpacked bytes, 64-bit counters) exceed the modelled
    # bit-packed accounting but follow the same growth shape.
    for row in rows:
        assert row[4] >= row[2]
        assert row[4] > 0


def test_dna_index_build(once):
    workload = CACHE.workload(80_000, 200)
    engine = once(lambda: CACHE.alae(workload.text))
    sizes = engine.index_size_bytes()
    assert sizes["total"] == sizes["bwt_index"] + sizes["dominate_index"]
    # Modelled vs on-disk accounting stay separate and self-consistent.
    assert sizes["actual_total"] == (
        sizes["bwt_index_actual"] + sizes["dominate_index_actual"]
    )
    assert sizes["actual_total"] >= sizes["total"]


def test_protein_index_build(once):
    workload = CACHE.workload(20_000, 200, alphabet=PROTEIN)
    scheme = ScoringScheme(1, -3, -11, -1)
    engine = once(lambda: CACHE.alae(workload.text, scheme, PROTEIN))
    assert engine.index_size_bytes()["dominate_index"] > 0
