"""Batch serving throughput: queries/sec vs worker count and batch size.

Builds one shared-engine :class:`repro.service.SearchService` over a
synthetic multi-sequence database, then times ``search_batch`` for every
(batch size, worker count) combination and reports queries/sec plus the
speedup over the single-worker run of the same batch size.

The default executor is ``processes``: ALAE searches are pure-Python DP, so
threads serialise on the GIL while forked workers inherit the warmed engine
(CSA + dominate index) copy-on-write and scale with cores.  On a
multi-core host the 4-worker row should show well above 1.5x the
single-worker throughput; on a single core it honestly reports ~1x.

Run:  PYTHONPATH=src python benchmarks/bench_batch_throughput.py
"""

from __future__ import annotations

import argparse
import os

import numpy as np

from repro import SearchService, genome, sample_homologous_queries
from repro.io.fasta import FastaRecord
from repro.service import Query


def build_service(
    sequences: int, seq_length: int, seed: int, executor: str
) -> SearchService:
    rng = np.random.default_rng(seed)
    records = [
        FastaRecord(header=f"chr{i}", sequence=genome(seq_length, rng))
        for i in range(1, sequences + 1)
    ]
    return SearchService(records, executor=executor)


def make_queries(
    service: SearchService, count: int, length: int, seed: int
) -> list[Query]:
    rng = np.random.default_rng(seed)
    sequences = sample_homologous_queries(
        service.database.text, count, length, rng
    )
    return [Query(f"q{i}", seq) for i, seq in enumerate(sequences, start=1)]


def run(args: argparse.Namespace) -> None:
    service = build_service(
        args.sequences, args.seq_length, args.seed, args.executor
    )
    pool = make_queries(
        service, max(args.batch_sizes), args.query_length, args.seed + 1
    )
    print(
        f"# database: {args.sequences} x {args.seq_length} = "
        f"{service.database.total_length} chars; query length "
        f"{args.query_length}; H={args.threshold}; executor={args.executor}; "
        f"cpus={os.cpu_count()}"
    )
    print("batch\tworkers\twall_s\tqps\tspeedup\thits")
    for batch_size in args.batch_sizes:
        batch = pool[:batch_size]
        base_qps = None
        for workers in sorted(set(args.workers)):  # baseline = fewest workers
            report = service.search_batch(
                batch, threshold=args.threshold, workers=workers
            )
            qps = report.queries_per_second
            if base_qps is None:
                base_qps = qps
            speedup = qps / base_qps if base_qps else 0.0
            print(
                f"{batch_size}\t{workers}\t{report.wall_seconds:.3f}\t"
                f"{qps:.1f}\t{speedup:.2f}x\t{report.total_hits}"
            )


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sequences", type=int, default=4)
    parser.add_argument("--seq-length", type=int, default=10_000)
    parser.add_argument("--query-length", type=int, default=80)
    parser.add_argument("--threshold", type=int, default=36)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--batch-sizes", type=int, nargs="+", default=[20, 100]
    )
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument(
        "--executor", choices=("threads", "processes"), default="processes"
    )
    return parser.parse_args()


if __name__ == "__main__":
    run(parse_args())
