"""Engine hot-path benchmark: vectorized traversal vs the scalar reference.

Measures single-query wall-clock of ``ALAE(use_vectorized=True)`` against
the pre-vectorization per-fork reference path (``use_vectorized=False``) on
the paper's Sec. 7 workload shape — homologous queries sampled from an
n≈320k synthetic text — for both alphabets the paper evaluates:

* DNA (sigma = 4), default scheme ``<1,-3,-5,-2>``;
* protein (sigma = 20), scheme ``<1,-3,-11,-1>`` (Sec. 7.5).

Every timed query is also checked for *bit-identical* results between the
two engines (hits, ordering, t_start, and the x1/x2/x3 cost counters), so
the benchmark doubles as an equivalence gate: a speedup obtained by
diverging from the reference is reported as a hard failure, not a win.

Timings interleave the two engines and take the median of several
repetitions (this container's scheduler is noisy); engine construction and
the dominate-index build are excluded (warmed before timing).

The JSON report seeds the repo's perf trajectory (``BENCH_engine.json``)::

    PYTHONPATH=src python benchmarks/bench_engine_hotpath.py \\
        --out BENCH_engine.json

CI regression gate (machine-independent: compares the *relative* speedup,
not absolute times, and fails on a >30% drop vs the committed baseline)::

    PYTHONPATH=src python benchmarks/bench_engine_hotpath.py --quick \\
        --check BENCH_engine.json
"""

from __future__ import annotations

import argparse
import json
import math
import statistics
import sys
import time
from pathlib import Path

from repro import ALAE
from repro.alphabet import DNA, PROTEIN
from repro.obs import maybe_record_bench
from repro.scoring.scheme import DEFAULT_SCHEME, ScoringScheme
from repro.workloads.generator import make_workload

#: Schema version of the emitted JSON.
BENCH_SCHEMA = 1

#: CI fails when a component's speedup drops below this fraction of the
#: committed baseline speedup (>30% throughput regression).  The gate
#: compares like against like: a ``--quick`` run is checked against the
#: baseline's ``quick_components`` (measured at the same workload size),
#: since the speedup is machine-independent but not size-independent.
REGRESSION_FLOOR = 0.70

QUICK_CONFIG = dict(n=60_000, queries=4, reps=3)

COMPONENTS = [
    {
        "name": "dna",
        "alphabet": DNA,
        "scheme": DEFAULT_SCHEME,
        "query_length": 80,
        "thresholds": (25, 40),
    },
    {
        "name": "protein",
        "alphabet": PROTEIN,
        "scheme": ScoringScheme(1, -3, -11, -1),
        "query_length": 80,
        "thresholds": (15, 25),
    },
]


def stats_signature(stats):
    return (
        stats.calculated_x1, stats.calculated_x2, stats.calculated_x3,
        stats.reused, stats.emr_assigned, stats.forks_seeded,
        stats.forks_skipped_domination, stats.forks_skipped_global,
        stats.grams_absent_in_text, stats.nodes_visited,
    )


def time_engine(engine, queries, threshold, reps):
    """Median per-query seconds over ``reps`` passes of the whole batch."""
    samples = []
    for _ in range(reps):
        started = time.perf_counter()
        for query in queries:
            engine.search(query, threshold=threshold)
        samples.append((time.perf_counter() - started) / len(queries))
    return statistics.median(samples)


def run_component(spec, n, query_count, reps):
    workload = make_workload(
        n, spec["query_length"], query_count=query_count,
        alphabet=spec["alphabet"], cached=False,
    )
    vec = ALAE(
        workload.text, spec["alphabet"], spec["scheme"], use_vectorized=True
    )
    ref = ALAE(
        workload.text, spec["alphabet"], spec["scheme"], use_vectorized=False
    )

    # Equivalence gate + warmup (builds the dominate index on both).
    hits_total = 0
    for threshold in spec["thresholds"]:
        for query in workload.queries:
            a = vec.search(query, threshold=threshold)
            b = ref.search(query, threshold=threshold)
            if a.hits.hits() != b.hits.hits():
                raise SystemExit(
                    f"[{spec['name']}] vectorized engine diverged from the "
                    f"reference on threshold={threshold}"
                )
            if stats_signature(a.stats) != stats_signature(b.stats):
                raise SystemExit(
                    f"[{spec['name']}] cost accounting diverged on "
                    f"threshold={threshold}"
                )
            hits_total += len(a.hits)

    rows = []
    for threshold in spec["thresholds"]:
        # Interleave the engines so machine noise hits both alike.
        ref_s = time_engine(ref, workload.queries, threshold, reps)
        vec_s = time_engine(vec, workload.queries, threshold, reps)
        rows.append(
            {
                "threshold": threshold,
                "ref_ms_per_query": round(ref_s * 1e3, 3),
                "vec_ms_per_query": round(vec_s * 1e3, 3),
                "speedup": round(ref_s / vec_s, 3),
            }
        )
    speedup = statistics.median(row["speedup"] for row in rows)
    return {
        "name": spec["name"],
        "sigma": spec["alphabet"].size,
        "scheme": str(spec["scheme"]),
        "n": n,
        "query_length": spec["query_length"],
        "query_count": query_count,
        "hits_checked": hits_total,
        "thresholds": rows,
        "speedup": speedup,
    }


def geometric_mean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=320_000)
    parser.add_argument("--queries", type=int, default=8)
    parser.add_argument("--reps", type=int, default=5)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized run (n=60k, 4 queries, 3 reps)",
    )
    parser.add_argument("--out", type=Path, default=None)
    parser.add_argument(
        "--check", type=Path, default=None,
        help="baseline BENCH_engine.json to gate regressions against",
    )
    args = parser.parse_args()
    if args.quick:
        args.n = QUICK_CONFIG["n"]
        args.queries = QUICK_CONFIG["queries"]
        args.reps = QUICK_CONFIG["reps"]

    components = [
        run_component(spec, args.n, args.queries, args.reps)
        for spec in COMPONENTS
    ]
    overall = geometric_mean([c["speedup"] for c in components])
    report = {
        "schema": BENCH_SCHEMA,
        "bench": "engine_hotpath",
        "n": args.n,
        "components": components,
        "speedup_geometric_mean": round(overall, 3),
    }

    if args.out is not None and not args.quick:
        # A full baseline also carries quick-sized reference speedups so
        # the CI gate compares equal workload sizes (the speedup shrinks
        # with n; comparing a quick run against full-size numbers would
        # silently eat most of the advertised tolerance).
        print("measuring quick-sized reference components for the CI gate…")
        report["quick_components"] = [
            run_component(
                spec, QUICK_CONFIG["n"], QUICK_CONFIG["queries"],
                QUICK_CONFIG["reps"],
            )
            for spec in COMPONENTS
        ]

    print(f"engine hot path: n={args.n}, {args.queries} queries/component")
    for comp in components:
        print(f"  [{comp['name']}] sigma={comp['sigma']} scheme={comp['scheme']}")
        for row in comp["thresholds"]:
            print(
                f"    H={row['threshold']:>4}  ref {row['ref_ms_per_query']:8.2f} ms"
                f"  vec {row['vec_ms_per_query']:8.2f} ms"
                f"  speedup {row['speedup']:.2f}x"
            )
        print(f"    component speedup: {comp['speedup']:.2f}x")
    print(f"  geometric-mean speedup: {overall:.2f}x")

    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}")

    bench_id = maybe_record_bench(
        "engine_hotpath",
        {
            "n": args.n,
            "speedup_geometric_mean": report["speedup_geometric_mean"],
            "components": [
                {"name": c["name"], "speedup": c["speedup"]} for c in components
            ],
        },
    )
    if bench_id is not None:
        print(f"recorded as bench #{bench_id} (REPRO_CATALOG)")

    if args.check is not None:
        baseline = json.loads(args.check.read_text())
        base_components = baseline["components"]
        if args.quick and "quick_components" in baseline:
            base_components = baseline["quick_components"]
        failed = False
        for base_comp in base_components:
            current = next(
                (c for c in components if c["name"] == base_comp["name"]), None
            )
            if current is None:
                print(f"REGRESSION CHECK: component {base_comp['name']} missing")
                failed = True
                continue
            floor = base_comp["speedup"] * REGRESSION_FLOOR
            status = "ok" if current["speedup"] >= floor else "REGRESSED"
            print(
                f"  check [{base_comp['name']}]: speedup {current['speedup']:.2f}x "
                f"vs baseline {base_comp['speedup']:.2f}x (floor {floor:.2f}x) "
                f"-> {status}"
            )
            if current["speedup"] < floor:
                failed = True
        if failed:
            print("engine hot-path benchmark REGRESSED vs committed baseline")
            return 1
        print("regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
