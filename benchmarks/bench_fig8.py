"""Figure 8: ALAE alignment time across E-values (score-filter sensitivity)."""

import pytest

from repro.bench.experiments import DEFAULT_SCHEME, _outcomes, fig8


@pytest.mark.parametrize("e_value", (1e-15, 1e-5, 10.0))
@pytest.mark.parametrize("m", (500, 2000, 4000))
def test_evalue_configuration(once, m, e_value):
    out = once(_outcomes, 40_000, m, "alae", DEFAULT_SCHEME, e_value)
    assert out.threshold >= 1


def test_fig8_shape(once):
    """Smaller E => larger H => never more hits, never more entries."""
    _title, _headers, rows, _note = once(fig8)
    assert rows
    for m in (500, 2000, 4000):
        strict = _outcomes(40_000, m, "alae", DEFAULT_SCHEME, 1e-15)
        loose = _outcomes(40_000, m, "alae", DEFAULT_SCHEME, 10.0)
        assert strict.threshold > loose.threshold
        assert strict.total_hits <= loose.total_hits
        assert strict.calculated <= loose.calculated
