"""Table 2: alignment time and result counts while varying query length.

Each engine/length configuration is measured once through the shared
experiment cache (later references reuse the memoised outcome).  The final
check asserts the paper's shape: exact engines agree on the result count C,
ALAE calculates no more entries than BWT-SW, and BLAST misses results.
"""

import pytest

from repro.bench.experiments import TABLE2_MS, TABLE2_N, _outcomes, table2


@pytest.mark.parametrize("m", TABLE2_MS)
def test_alae_query_length(once, m):
    out = once(_outcomes, TABLE2_N, m, "alae")
    assert out.total_hits > 0


@pytest.mark.parametrize("m", TABLE2_MS)
def test_bwtsw_query_length(once, m):
    out = once(_outcomes, TABLE2_N, m, "bwtsw")
    assert out.total_hits > 0


@pytest.mark.parametrize("m", TABLE2_MS)
def test_blast_query_length(once, m):
    out = once(_outcomes, TABLE2_N, m, "blast")
    assert out.total_hits >= 0


def test_table2_shape(once):
    """Regenerate the table and assert the paper's qualitative shape."""
    _title, _headers, rows, _note = once(table2)
    assert rows
    for m in TABLE2_MS:
        alae = _outcomes(TABLE2_N, m, "alae")
        bwt = _outcomes(TABLE2_N, m, "bwtsw")
        blast = _outcomes(TABLE2_N, m, "blast")
        assert alae.total_hits == bwt.total_hits  # exactness
        assert blast.total_hits <= alae.total_hits  # heuristic misses
        assert alae.calculated <= bwt.calculated  # filtering works
        assert alae.computation_cost < bwt.computation_cost


def test_smith_waterman_gap(once):
    """Sec. 7.1 prose: the full Smith-Waterman sweep is far more work.

    Scaled stand-in for "SW took 7.7 hours where ALAE took 25 ms": ALAE must
    touch under a tenth of the n*m cells the SW sweep computes.
    """
    from repro import DEFAULT_SCHEME, smith_waterman_all_hits
    from repro.workloads import make_workload

    workload = make_workload(TABLE2_N, 1000, query_count=1)
    alae_out = _outcomes(TABLE2_N, 1000, "alae")
    result = once(
        smith_waterman_all_hits,
        workload.text,
        workload.queries[0],
        DEFAULT_SCHEME,
        alae_out.threshold,
    )
    assert len(result) > 0
    assert alae_out.calculated < TABLE2_N * 1000 / 10
