"""Table 4: calculated entries by cost class and total computation cost."""

import pytest

from repro.bench.experiments import _outcomes, _stats_of, table4


@pytest.mark.parametrize("m", (500, 2000))
def test_alae_entry_classes(once, m):
    x1, x2, x3 = once(_stats_of, 40_000, m, "alae")
    # ALAE computes a substantial share of its entries at reduced cost.
    assert x1 > 0
    assert x1 + x2 + x3 == _outcomes(40_000, m, "alae").calculated


@pytest.mark.parametrize("m", (500, 2000))
def test_bwtsw_entry_classes(once, m):
    x1, x2, x3 = once(_stats_of, 40_000, m, "bwtsw")
    # BWT-SW always evaluates all three recurrences: everything is x3.
    assert x1 == 0 and x2 == 0 and x3 > 0


def test_table4_shape(once):
    """ALAE's cost advantage holds and (paper shape) widens with m."""
    _title, _headers, rows, _note = once(table4)
    assert rows
    ratios = []
    for m in (500, 2000):
        a = _outcomes(40_000, m, "alae")
        b = _outcomes(40_000, m, "bwtsw")
        assert a.computation_cost < b.computation_cost
        ratios.append(b.computation_cost / a.computation_cost)
    assert ratios[-1] > 1.2  # a clear advantage at the longer query
