"""Figure 9: effect of scoring schemes on the three engines."""

import pytest

from repro.bench.experiments import FIG9_M, FIG9_N, _outcomes, fig9
from repro.scoring.scheme import BLAST_DNA_SCHEMES


@pytest.mark.parametrize("name", list(BLAST_DNA_SCHEMES), ids=str)
def test_alae_scheme(once, name):
    out = once(_outcomes, FIG9_N, FIG9_M, "alae", BLAST_DNA_SCHEMES[name])
    assert out.total_hits >= 0


@pytest.mark.parametrize("name", list(BLAST_DNA_SCHEMES), ids=str)
def test_bwtsw_scheme(once, name):
    out = once(_outcomes, FIG9_N, FIG9_M, "bwtsw", BLAST_DNA_SCHEMES[name])
    assert out.total_hits >= 0


@pytest.mark.parametrize("name", list(BLAST_DNA_SCHEMES), ids=str)
def test_blast_scheme(once, name):
    out = once(_outcomes, FIG9_N, FIG9_M, "blast", BLAST_DNA_SCHEMES[name])
    assert out.total_hits >= 0


def test_fig9_shape(once):
    """Exact engines are scheme-sensitive; <1,-1,-5,-2> is ALAE's worst case."""
    _title, _headers, rows, _note = once(fig9)
    assert len(rows) == len(BLAST_DNA_SCHEMES)
    entries = {
        name: _outcomes(FIG9_N, FIG9_M, "alae", scheme).calculated
        for name, scheme in BLAST_DNA_SCHEMES.items()
    }
    # The weak-mismatch scheme calculates the most entries (paper Sec. 7.4).
    assert entries["<1,-1,-5,-2>"] == max(entries.values())
    # Harsher mismatches help: <1,-4,...> never exceeds <1,-3,...>.
    assert entries["<1,-4,-5,-2>"] <= entries["<1,-3,-5,-2>"]
