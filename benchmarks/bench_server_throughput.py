"""Serving-tier throughput: micro-batched vs single-request dispatch.

Spins up a real :class:`repro.server.SearchServer` (ephemeral port, result
cache disabled so every request pays for its search), then drives it with C
concurrent client threads each sending one-query requests from a shared
mixed-length workload — the traffic shape a front door actually sees.  Two
server configurations are compared on identical traffic:

* ``single``:  ``max_batch=1`` — every request is its own engine dispatch;
* ``batched``: ``max_batch=16, linger 2ms`` — concurrent requests coalesce
  into shared ``search_batch`` calls.

At concurrency >= 8 the batched server should match or beat the single
server (acceptance: batched qps >= single qps): coalescing replaces N
queue/executor round-trips with one, and the saved dispatch overhead grows
with concurrency.  Alignment work itself is identical in both modes, so on
a single core the margin is the dispatch overhead, not parallel speedup.

Run:  PYTHONPATH=src python benchmarks/bench_server_throughput.py
"""

from __future__ import annotations

import argparse
import tempfile
import threading
import time
import timeit
from pathlib import Path

from repro import IndexStore, make_workload
from repro.io.database import SequenceDatabase
from repro.io.fasta import FastaRecord
from repro.obs import maybe_record_bench
from repro.obs.metrics import Counter, Histogram, set_enabled
from repro.server import SearchServer, ServerClient, ServerThread


def build_store(args: argparse.Namespace, directory: Path) -> tuple[Path, list[str]]:
    workload = make_workload(
        args.text_length,
        args.max_query_length,
        query_count=args.queries,
        query_length_range=(args.min_query_length, args.max_query_length),
        seed=args.seed,
    )
    # Split the synthetic text into records so attribution has work to do.
    piece = max(1, len(workload.text) // args.sequences)
    records = [
        FastaRecord(f"chr{i + 1}", workload.text[i * piece : (i + 1) * piece])
        for i in range(args.sequences)
        if workload.text[i * piece : (i + 1) * piece]
    ]
    store_path = directory / "bench.idx"
    IndexStore.build(SequenceDatabase(records)).save(store_path)
    return store_path, workload.queries


def drive(
    port: int, queries: list[str], concurrency: int, threshold: int
) -> tuple[float, int]:
    """Send every query as its own request from C client threads."""
    cursor = {"next": 0}
    lock = threading.Lock()
    errors: list[Exception] = []

    def worker() -> None:
        try:
            with ServerClient(port=port) as client:
                while True:
                    with lock:
                        index = cursor["next"]
                        if index >= len(queries):
                            return
                        cursor["next"] = index + 1
                    client.search(
                        [(f"q{index}", queries[index])], threshold=threshold
                    )
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(concurrency)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    if errors:
        raise errors[0]
    return wall, len(queries)


def run_mode(
    store_path: Path,
    queries: list[str],
    *,
    max_batch: int,
    linger: float,
    concurrency: int,
    threshold: int,
    request_log: Path | None = None,
) -> tuple[float, dict]:
    server = SearchServer(
        store_path,
        port=0,
        max_batch=max_batch,
        linger=linger,
        max_queue=max(256, len(queries)),
        cache_size=0,
        reload_poll=0,
        request_log=request_log,
    )
    with ServerThread(server) as handle:
        # One warm-up request so engine caches don't skew the first mode.
        with ServerClient(port=handle.port) as client:
            client.search([("warmup", queries[0])], threshold=threshold)
        wall, count = drive(handle.port, queries, concurrency, threshold)
        with ServerClient(port=handle.port) as client:
            stats = client.stats()["stats"]
    return count / wall, stats


def mutation_costs(iterations: int = 200_000) -> dict[str, float]:
    """Nanoseconds per metric mutation (scratch metrics, off the registry)."""
    counter = Counter("bench_mutation_total", "scratch", ("m",), registry=None)
    histogram = Histogram(
        "bench_mutation_seconds", "scratch", ("m",), registry=None
    )
    counter_child = counter.labels(m="x")
    histogram_child = histogram.labels(m="x")

    def per_call(fn) -> float:
        return timeit.timeit(fn, number=iterations) / iterations * 1e9

    costs = {
        "counter_inc_ns": per_call(counter_child.inc),
        "observe_ns": per_call(lambda: histogram_child.observe(0.01)),
        "labelled_observe_ns": per_call(
            lambda: histogram.labels(m="x").observe(0.01)
        ),
    }
    set_enabled(False)
    try:
        costs["disabled_observe_ns"] = per_call(
            lambda: histogram_child.observe(0.01)
        )
    finally:
        set_enabled(True)
    return costs


def run(args: argparse.Namespace) -> None:
    with tempfile.TemporaryDirectory(prefix="repro-bench-server-") as tmp:
        store_path, queries = build_store(args, Path(tmp))
        lengths = sorted(len(q) for q in queries)
        print(
            f"# store: {store_path.stat().st_size:,} bytes over "
            f"{args.text_length:,} chars / {args.sequences} records; "
            f"{len(queries)} queries, lengths {lengths[0]}..{lengths[-1]} "
            f"(mixed), H={args.threshold}"
        )
        print(
            "# concurrency\tsingle_qps\tbatched_qps\tspeedup\tmean_batch"
        )
        rows = []
        for concurrency in args.concurrency:
            single_qps, _ = run_mode(
                store_path, queries,
                max_batch=1, linger=0.0,
                concurrency=concurrency, threshold=args.threshold,
            )
            batched_qps, stats = run_mode(
                store_path, queries,
                max_batch=args.max_batch, linger=args.linger_ms / 1000.0,
                concurrency=concurrency, threshold=args.threshold,
            )
            mean_batch = stats["mean_batch_size"]
            print(
                f"{concurrency}\t{single_qps:.1f}\t{batched_qps:.1f}\t"
                f"{batched_qps / single_qps:.2f}x\t{mean_batch:.2f}"
            )
            rows.append(
                {
                    "concurrency": concurrency,
                    "single_qps": round(single_qps, 1),
                    "batched_qps": round(batched_qps, 1),
                    "mean_batch": round(mean_batch, 2),
                }
            )

        # Request-log overhead: the batched configuration at the highest
        # requested concurrency, with and without a structured request log.
        # The log's hot-path cost is one deque append per query, so p50
        # should move by well under 5%.
        concurrency = args.concurrency[-1]
        batched = dict(
            max_batch=args.max_batch, linger=args.linger_ms / 1000.0,
            concurrency=concurrency, threshold=args.threshold,
        )
        _, off_stats = run_mode(store_path, queries, **batched)
        _, on_stats = run_mode(
            store_path, queries, request_log=Path(tmp) / "reqlog.db", **batched
        )
        off_p50 = off_stats["latency_seconds"]["p50"]
        on_p50 = on_stats["latency_seconds"]["p50"]
        overhead = (on_p50 / off_p50 - 1.0) if off_p50 > 0 else 0.0
        written = on_stats.get("request_log", {}).get("written", 0)
        print(
            f"# request log @C={concurrency}: p50 off {off_p50 * 1e3:.2f} ms, "
            f"on {on_p50 * 1e3:.2f} ms ({overhead:+.1%}), "
            f"{written} requests logged"
        )

        # Metrics overhead: same configuration, with the process-wide
        # registry enabled (the default) vs disabled.  An instrumented
        # request costs a handful of dict hits and short lock sections;
        # acceptance is p50 moving by under 5%.  Run the pair alternately
        # and compare best-of p50s — a single off/on pair measures machine
        # noise (tens of percent on a busy box), not the registry.
        off_p50s: list[float] = []
        on_p50s: list[float] = []
        for repeat in range(args.metrics_repeats):
            # Swap which configuration goes first each repeat, so thermal
            # or load drift cannot systematically favour one side.
            for enabled in ((False, True) if repeat % 2 == 0 else (True, False)):
                set_enabled(enabled)
                try:
                    _, run_stats = run_mode(store_path, queries, **batched)
                finally:
                    set_enabled(True)
                bucket = on_p50s if enabled else off_p50s
                bucket.append(run_stats["latency_seconds"]["p50"])
        metrics_off_p50 = min(off_p50s)
        metrics_on_p50 = min(on_p50s)
        metrics_overhead = (
            (metrics_on_p50 / metrics_off_p50 - 1.0)
            if metrics_off_p50 > 0 else 0.0
        )
        print(
            f"# metrics @C={concurrency}: best p50 of {args.metrics_repeats} "
            f"off {metrics_off_p50 * 1e3:.2f} ms, "
            f"on {metrics_on_p50 * 1e3:.2f} ms ({metrics_overhead:+.1%})"
        )

        # Per-mutation cost, measured directly: the server-level delta
        # above bounds the overhead within machine noise, while these
        # numbers show what one instrumented touch actually costs.
        op_ns = mutation_costs()
        print(
            "# per-op: counter inc {counter_inc_ns:.0f} ns, "
            "histogram observe {observe_ns:.0f} ns, "
            "labels()+observe {labelled_observe_ns:.0f} ns, "
            "disabled observe {disabled_observe_ns:.0f} ns".format(**op_ns)
        )

        # The store lives in a TemporaryDirectory, so key the result to its
        # fingerprint rather than a path that vanishes when the bench exits
        # (a dead path would fail every later ``catalog verify-all``).
        bench_id = maybe_record_bench(
            "server_throughput",
            {
                "threshold": args.threshold,
                "rows": rows,
                "request_log_p50_overhead": round(overhead, 4),
                "metrics_p50_overhead": round(metrics_overhead, 4),
                "metrics_op_ns": {k: round(v, 1) for k, v in op_ns.items()},
            },
            fingerprint=IndexStore.open(store_path).fingerprint_key,
        )
        if bench_id is not None:
            print(f"# recorded as bench #{bench_id} (REPRO_CATALOG)")


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--text-length", type=int, default=60_000)
    parser.add_argument("--sequences", type=int, default=6)
    parser.add_argument("--queries", type=int, default=48)
    parser.add_argument("--min-query-length", type=int, default=30)
    parser.add_argument("--max-query-length", type=int, default=80)
    parser.add_argument("--threshold", type=int, default=28)
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument("--linger-ms", type=float, default=2.0)
    parser.add_argument(
        "--concurrency", type=int, nargs="+", default=[1, 4, 8, 16]
    )
    parser.add_argument(
        "--metrics-repeats", type=int, default=3,
        help="alternating off/on pairs for the metrics-overhead comparison",
    )
    parser.add_argument("--seed", type=int, default=20120827)
    return parser.parse_args()


if __name__ == "__main__":
    run(parse_args())
