"""Serving-tier throughput: micro-batched vs single-request dispatch.

Spins up a real :class:`repro.server.SearchServer` (ephemeral port, result
cache disabled so every request pays for its search), then drives it with C
concurrent client threads each sending one-query requests from a shared
mixed-length workload — the traffic shape a front door actually sees.  Two
server configurations are compared on identical traffic:

* ``single``:  ``max_batch=1`` — every request is its own engine dispatch;
* ``batched``: ``max_batch=16, linger 2ms`` — concurrent requests coalesce
  into shared ``search_batch`` calls.

At concurrency >= 8 the batched server should match or beat the single
server (acceptance: batched qps >= single qps): coalescing replaces N
queue/executor round-trips with one, and the saved dispatch overhead grows
with concurrency.  Alignment work itself is identical in both modes, so on
a single core the margin is the dispatch overhead, not parallel speedup.

Run:  PYTHONPATH=src python benchmarks/bench_server_throughput.py
"""

from __future__ import annotations

import argparse
import tempfile
import threading
import time
from pathlib import Path

from repro import IndexStore, make_workload
from repro.io.database import SequenceDatabase
from repro.io.fasta import FastaRecord
from repro.server import SearchServer, ServerClient, ServerThread


def build_store(args: argparse.Namespace, directory: Path) -> tuple[Path, list[str]]:
    workload = make_workload(
        args.text_length,
        args.max_query_length,
        query_count=args.queries,
        query_length_range=(args.min_query_length, args.max_query_length),
        seed=args.seed,
    )
    # Split the synthetic text into records so attribution has work to do.
    piece = max(1, len(workload.text) // args.sequences)
    records = [
        FastaRecord(f"chr{i + 1}", workload.text[i * piece : (i + 1) * piece])
        for i in range(args.sequences)
        if workload.text[i * piece : (i + 1) * piece]
    ]
    store_path = directory / "bench.idx"
    IndexStore.build(SequenceDatabase(records)).save(store_path)
    return store_path, workload.queries


def drive(
    port: int, queries: list[str], concurrency: int, threshold: int
) -> tuple[float, int]:
    """Send every query as its own request from C client threads."""
    cursor = {"next": 0}
    lock = threading.Lock()
    errors: list[Exception] = []

    def worker() -> None:
        try:
            with ServerClient(port=port) as client:
                while True:
                    with lock:
                        index = cursor["next"]
                        if index >= len(queries):
                            return
                        cursor["next"] = index + 1
                    client.search(
                        [(f"q{index}", queries[index])], threshold=threshold
                    )
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(concurrency)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    if errors:
        raise errors[0]
    return wall, len(queries)


def run_mode(
    store_path: Path,
    queries: list[str],
    *,
    max_batch: int,
    linger: float,
    concurrency: int,
    threshold: int,
) -> tuple[float, float]:
    server = SearchServer(
        store_path,
        port=0,
        max_batch=max_batch,
        linger=linger,
        max_queue=max(256, len(queries)),
        cache_size=0,
        reload_poll=0,
    )
    with ServerThread(server) as handle:
        # One warm-up request so engine caches don't skew the first mode.
        with ServerClient(port=handle.port) as client:
            client.search([("warmup", queries[0])], threshold=threshold)
        wall, count = drive(handle.port, queries, concurrency, threshold)
        with ServerClient(port=handle.port) as client:
            stats = client.stats()["stats"]
    return count / wall, stats["mean_batch_size"]


def run(args: argparse.Namespace) -> None:
    with tempfile.TemporaryDirectory(prefix="repro-bench-server-") as tmp:
        store_path, queries = build_store(args, Path(tmp))
        lengths = sorted(len(q) for q in queries)
        print(
            f"# store: {store_path.stat().st_size:,} bytes over "
            f"{args.text_length:,} chars / {args.sequences} records; "
            f"{len(queries)} queries, lengths {lengths[0]}..{lengths[-1]} "
            f"(mixed), H={args.threshold}"
        )
        print(
            "# concurrency\tsingle_qps\tbatched_qps\tspeedup\tmean_batch"
        )
        for concurrency in args.concurrency:
            single_qps, _ = run_mode(
                store_path, queries,
                max_batch=1, linger=0.0,
                concurrency=concurrency, threshold=args.threshold,
            )
            batched_qps, mean_batch = run_mode(
                store_path, queries,
                max_batch=args.max_batch, linger=args.linger_ms / 1000.0,
                concurrency=concurrency, threshold=args.threshold,
            )
            print(
                f"{concurrency}\t{single_qps:.1f}\t{batched_qps:.1f}\t"
                f"{batched_qps / single_qps:.2f}x\t{mean_batch:.2f}"
            )


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--text-length", type=int, default=60_000)
    parser.add_argument("--sequences", type=int, default=6)
    parser.add_argument("--queries", type=int, default=48)
    parser.add_argument("--min-query-length", type=int, default=30)
    parser.add_argument("--max-query-length", type=int, default=80)
    parser.add_argument("--threshold", type=int, default=28)
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument("--linger-ms", type=float, default=2.0)
    parser.add_argument(
        "--concurrency", type=int, nargs="+", default=[1, 4, 8, 16]
    )
    parser.add_argument("--seed", type=int, default=20120827)
    return parser.parse_args()


if __name__ == "__main__":
    run(parse_args())
