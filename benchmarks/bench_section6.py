"""Section 6: the analytical upper bounds, asserted to the paper's digits."""

import pytest

from repro.bench.experiments import section6
from repro.core.analysis import entry_bound, paper_bound_extremes
from repro.scoring.scheme import DEFAULT_SCHEME


def test_section6_exact_reproduction(once):
    _title, _headers, rows, _note = once(section6)
    assert len(rows) == 6
    dna_lo, dna_hi = paper_bound_extremes(4)
    prot_lo, prot_hi = paper_bound_extremes(20)
    default = entry_bound(DEFAULT_SCHEME, 4)
    # The paper's quoted constants, to their printed precision.
    assert dna_lo.coefficient == pytest.approx(4.50, abs=5e-3)
    assert dna_lo.exponent == pytest.approx(0.520, abs=1e-3)
    assert dna_hi.coefficient == pytest.approx(9.05, abs=5e-3)
    assert dna_hi.exponent == pytest.approx(0.896, abs=1e-3)
    assert default.coefficient == pytest.approx(4.47, abs=5e-3)
    assert default.exponent == pytest.approx(0.6038, abs=1e-4)
    assert prot_lo.coefficient == pytest.approx(8.28, abs=5e-3)
    assert prot_lo.exponent == pytest.approx(0.364, abs=1e-3)
    assert prot_hi.coefficient == pytest.approx(7.49, abs=5e-3)
    assert prot_hi.exponent == pytest.approx(0.723, abs=1e-3)


def test_bound_evaluation_speed(once):
    """Evaluating the full BLAST grid is effectively free."""
    lo, hi = once(paper_bound_extremes, 4)
    assert lo.exponent == pytest.approx(0.520, abs=1e-3)
    assert hi.exponent == pytest.approx(0.896, abs=1e-3)


def test_default_bound_dominates_measured_entries(once):
    """Eq. 4 is an upper bound: measured ALAE entries must respect it."""
    from repro.bench.experiments import _outcomes

    bound = once(entry_bound, DEFAULT_SCHEME, 4)
    out = _outcomes(40_000, 2000, "alae")
    # Two queries of length 2000 against n = 40,000.
    allowed = 2 * bound.entries(2000, 40_000)
    assert out.calculated < allowed
