"""Figure 10: filtering and reusing ratios per scoring scheme."""

from repro.bench.experiments import FIG9_M, FIG9_N, _outcomes, fig10
from repro.scoring.scheme import BLAST_DNA_SCHEMES


def test_fig10_shape(once):
    """Weak-mismatch scheme collapses filtering; ratios stay in [0, 1)."""
    _title, _headers, rows, _note = once(fig10)
    assert len(rows) == len(BLAST_DNA_SCHEMES)
    ratios = {}
    for name, scheme in BLAST_DNA_SCHEMES.items():
        a = _outcomes(FIG9_N, FIG9_M, "alae", scheme)
        b = _outcomes(FIG9_N, FIG9_M, "bwtsw", scheme)
        filtering = max(0.0, (b.calculated - a.calculated) / b.calculated)
        reusing = a.reused / a.accessed if a.accessed else 0.0
        assert 0.0 <= filtering < 1.0
        assert 0.0 <= reusing < 1.0
        ratios[name] = filtering
    # Filtering stays effective under every scheme; the absolute entry
    # explosion of <1,-1,-5,-2> is asserted in bench_fig9/bench_table5.
    assert all(r > 0.05 for r in ratios.values())
