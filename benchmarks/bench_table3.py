"""Table 3: alignment time and result counts while varying text length."""

import pytest

from repro.bench.experiments import TABLE3_M, TABLE3_NS, _outcomes, table3


@pytest.mark.parametrize("n", TABLE3_NS)
def test_alae_text_length(once, n):
    out = once(_outcomes, n, TABLE3_M, "alae")
    assert out.total_hits > 0


@pytest.mark.parametrize("n", TABLE3_NS)
def test_bwtsw_text_length(once, n):
    out = once(_outcomes, n, TABLE3_M, "bwtsw")
    assert out.total_hits > 0


@pytest.mark.parametrize("n", TABLE3_NS)
def test_blast_text_length(once, n):
    out = once(_outcomes, n, TABLE3_M, "blast")
    assert out.total_hits >= 0


def test_table3_shape(once):
    """Exact engines agree at every n; ALAE's filters always help."""
    _title, _headers, rows, _note = once(table3)
    assert rows
    for n in TABLE3_NS:
        alae = _outcomes(n, TABLE3_M, "alae")
        bwt = _outcomes(n, TABLE3_M, "bwtsw")
        assert alae.total_hits == bwt.total_hits
        assert alae.calculated <= bwt.calculated
        assert alae.computation_cost < bwt.computation_cost
