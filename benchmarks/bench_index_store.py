"""Index-store economics: build once vs open forever, per database size.

For each database size this measures

* ``build_s`` — constructing every index from raw records (reversed-text
  CSA + dominate index, what every cold process paid before the store),
* ``save_s`` — serializing the built store to disk,
* ``open_s`` — cold-starting a serving engine from the saved file
  (``IndexStore.open`` + engine materialization from the mmapped arrays),
* ``file_MB`` — on-disk store size,
* ``speedup`` — build/open cold-start ratio, and
* ``breakeven`` — how many store-served cold starts amortize the one-off
  build+save cost: ``(build_s + save_s) / (build_s - open_s)`` rounded up;
  every cold start after that is pure profit.

A per-query timing sanity check asserts the served engine matches the
fresh-built engine hit-for-hit on a homologous query.

A second table covers the **sharded build**: for each database size it
times a serial K-shard build (``build_workers=1``) against a parallel one
(``build_workers=K``), reports the speedup — index construction is
CPU-bound Python, so on a multi-core machine the parallel build should
approach Kx; on one core it stays ~1x — and asserts the sharded service's
merged hits match the single-store service exactly.

Run:  PYTHONPATH=src python benchmarks/bench_index_store.py
      PYTHONPATH=src python benchmarks/bench_index_store.py --shards 4
"""

from __future__ import annotations

import argparse
import math
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import (
    IndexStore,
    SearchService,
    ShardedSearchService,
    ShardedStore,
    genome,
    sample_homologous_queries,
)
from repro.io.database import SequenceDatabase
from repro.io.fasta import FastaRecord


def make_database(n: int, sequences: int, seed: int) -> SequenceDatabase:
    rng = np.random.default_rng(seed)
    per = n // sequences
    records = [
        FastaRecord(header=f"chr{i}", sequence=genome(per, rng))
        for i in range(1, sequences + 1)
    ]
    return SequenceDatabase(records)


def measure(database: SequenceDatabase, directory: Path, threshold: int, seed: int):
    started = time.perf_counter()
    store = IndexStore.build(database)
    build_s = time.perf_counter() - started

    path = directory / f"store_{database.total_length}.idx"
    started = time.perf_counter()
    store.save(path)
    save_s = time.perf_counter() - started

    started = time.perf_counter()
    reopened = IndexStore.open(path)
    engine = reopened.engine()
    open_s = time.perf_counter() - started

    rng = np.random.default_rng(seed)
    (query,) = sample_homologous_queries(database.text, 1, 60, rng)
    started = time.perf_counter()
    served = engine.search(query, threshold=threshold)
    query_s = time.perf_counter() - started
    fresh = store.engine().search(query, threshold=threshold)
    assert served.hits.as_score_set() == fresh.hits.as_score_set()

    file_bytes = path.stat().st_size
    saved_per_start = build_s - open_s
    breakeven = (
        math.ceil((build_s + save_s) / saved_per_start)
        if saved_per_start > 0
        else float("inf")
    )
    return build_s, save_s, open_s, query_s, file_bytes, breakeven


def measure_sharded(
    database: SequenceDatabase,
    directory: Path,
    shards: int,
    threshold: int,
    seed: int,
):
    serial_path = directory / f"sharded_serial_{database.total_length}.idx"
    started = time.perf_counter()
    ShardedStore.build(database, serial_path, shards=shards, build_workers=1)
    serial_s = time.perf_counter() - started

    parallel_path = directory / f"sharded_par_{database.total_length}.idx"
    started = time.perf_counter()
    store = ShardedStore.build(
        database, parallel_path, shards=shards, build_workers=shards
    )
    parallel_s = time.perf_counter() - started

    rng = np.random.default_rng(seed)
    (query,) = sample_homologous_queries(database.text, 1, 60, rng)
    sharded = ShardedSearchService(store)
    started = time.perf_counter()
    merged = sharded.search(query, threshold=threshold)
    query_s = time.perf_counter() - started
    baseline = SearchService(database).search(query, threshold=threshold)
    assert merged.hits == baseline.hits  # exact merge or the numbers lie

    total_bytes = sum(
        store.shard_path(i).stat().st_size for i in range(store.shard_count)
    )
    return serial_s, parallel_s, query_s, total_bytes


def run(args: argparse.Namespace) -> None:
    print("n\tbuild_s\tsave_s\topen_s\tquery_s\tfile_MB\tspeedup\tbreakeven")
    with tempfile.TemporaryDirectory() as tmp:
        for n in args.sizes:
            database = make_database(n, args.sequences, args.seed)
            build_s, save_s, open_s, query_s, file_bytes, breakeven = measure(
                database, Path(tmp), args.threshold, args.seed + 1
            )
            speedup = build_s / open_s if open_s > 0 else float("inf")
            print(
                f"{n}\t{build_s:.3f}\t{save_s:.3f}\t{open_s:.3f}\t"
                f"{query_s:.3f}\t{file_bytes / 1e6:.2f}\t{speedup:.0f}x\t"
                f"{breakeven}"
            )

    cores = os.cpu_count() or 1
    print(
        f"\n# sharded build: K={args.shards} shards, serial vs "
        f"{args.shards}-process parallel ({cores} core(s) available)"
    )
    print("n\tserial_s\tparallel_s\tbuild_speedup\tquery_s\tfile_MB")
    with tempfile.TemporaryDirectory() as tmp:
        for n in args.sizes:
            database = make_database(
                n, max(args.sequences, args.shards), args.seed
            )
            serial_s, parallel_s, query_s, total_bytes = measure_sharded(
                database, Path(tmp), args.shards, args.threshold, args.seed + 1
            )
            build_speedup = serial_s / parallel_s if parallel_s > 0 else 0.0
            print(
                f"{n}\t{serial_s:.3f}\t{parallel_s:.3f}\t"
                f"{build_speedup:.2f}x\t{query_s:.3f}\t"
                f"{total_bytes / 1e6:.2f}"
            )
    if cores < 2:
        print(
            "# note: single-core machine — parallel build speedup is "
            "bounded at ~1x here; it scales with cores because shard "
            "builds are independent CPU-bound processes"
        )


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes", type=int, nargs="+",
        default=[20_000, 80_000, 320_000, 1_280_000],
    )
    parser.add_argument("--sequences", type=int, default=4)
    parser.add_argument(
        "--shards", type=int, default=4,
        help="shard count for the sharded-build table",
    )
    parser.add_argument("--threshold", type=int, default=30)
    parser.add_argument("--seed", type=int, default=0)
    return parser.parse_args()


if __name__ == "__main__":
    run(parse_args())
