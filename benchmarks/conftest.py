"""Shared benchmark configuration.

Each benchmark measures one engine/workload configuration once (searches take
0.1-10 s; statistical rounds would multiply a multi-minute suite), using the
same memoised experiment layer as ``python -m repro.bench.report``.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once and return its result."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1,
            warmup_rounds=0,
        )

    return _run
