"""Ablations: contribution of each filtering/reuse technique (DESIGN.md)."""

import pytest

from repro.bench.experiments import ABLATION_CONFIGS, _outcomes, ablation


@pytest.mark.parametrize("label,flags", ABLATION_CONFIGS, ids=lambda v: str(v))
def test_ablation_configuration(once, label, flags):
    out = once(_outcomes, 30_000, 1000, "alae", engine_flags=flags)
    assert out.total_hits > 0


def test_ablation_shape(once):
    """Every toggle preserves the answer set; each technique contributes."""
    _title, _headers, rows, _note = once(ablation)
    assert rows
    full = _outcomes(30_000, 1000, "alae", engine_flags=())
    for _label, flags in ABLATION_CONFIGS[1:]:
        variant = _outcomes(30_000, 1000, "alae", engine_flags=flags)
        assert variant.total_hits == full.total_hits  # exactness
    no_reuse = _outcomes(
        30_000, 1000, "alae", engine_flags=(("use_reuse", False),)
    )
    assert no_reuse.reused == 0
    no_score = _outcomes(
        30_000, 1000, "alae", engine_flags=(("use_score_filter", False),)
    )
    assert no_score.calculated >= full.calculated
